"""Unit and property tests for the Greenwald-Khanna sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import GKSketch


def true_rank(data, value):
    return int(np.searchsorted(np.sort(np.asarray(data)), value, side="right"))


def assert_gk_guarantee(sketch, data, ranks=None):
    """query_rank(r) must return a value with true rank within eps*n."""
    n = len(data)
    allowed = sketch.epsilon * n + 1e-9
    if ranks is None:
        ranks = [1, max(1, n // 4), max(1, n // 2), max(1, 3 * n // 4), n]
    for r in ranks:
        value = sketch.query_rank(r)
        actual = true_rank(data, value)
        low = int(np.searchsorted(np.sort(np.asarray(data)), value, side="left")) + 1
        # distance from r to the value's rank interval
        err = max(0, low - r, r - actual)
        assert err <= allowed, (
            f"rank {r}: value {value} has rank interval [{low},{actual}], "
            f"allowed {allowed}"
        )


class TestBasics:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            GKSketch(0.0)
        with pytest.raises(ValueError):
            GKSketch(1.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            GKSketch(0.1).query_rank(1)

    def test_single_element(self):
        sketch = GKSketch(0.1)
        sketch.update(42)
        assert sketch.query_rank(1) == 42
        assert sketch.min_value() == 42
        assert sketch.max_value() == 42

    def test_tracks_exact_min_max(self):
        sketch = GKSketch(0.05)
        data = np.random.default_rng(0).integers(0, 10_000, 5000)
        for v in data:
            sketch.update(int(v))
        assert sketch.min_value() == data.min()
        assert sketch.max_value() == data.max()

    def test_n_counts_updates(self):
        sketch = GKSketch(0.1)
        for i in range(57):
            sketch.update(i)
        assert sketch.n == 57

    def test_memory_words_tracks_tuples(self):
        sketch = GKSketch(0.1)
        for i in range(100):
            sketch.update(i)
        assert sketch.memory_words() == 3 * sketch.tuple_count() + 4

    def test_quantile_phi_validation(self):
        sketch = GKSketch(0.1)
        sketch.update(1)
        with pytest.raises(ValueError):
            sketch.quantile(0.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)


class TestAccuracy:
    def test_sorted_input(self):
        sketch = GKSketch(0.05)
        data = list(range(2000))
        for v in data:
            sketch.update(v)
        assert_gk_guarantee(sketch, data)

    def test_reverse_sorted_input(self):
        sketch = GKSketch(0.05)
        data = list(range(2000, 0, -1))
        for v in data:
            sketch.update(v)
        assert_gk_guarantee(sketch, data)

    def test_random_input(self):
        sketch = GKSketch(0.02)
        data = np.random.default_rng(7).integers(0, 10**9, 5000)
        for v in data:
            sketch.update(int(v))
        assert_gk_guarantee(sketch, data, ranks=range(1, 5001, 250))

    def test_heavy_duplicates(self):
        sketch = GKSketch(0.05)
        data = [5] * 1000 + [7] * 1000 + [9] * 500
        for v in data:
            sketch.update(v)
        assert_gk_guarantee(sketch, data)

    def test_all_equal(self):
        sketch = GKSketch(0.1)
        data = [3] * 500
        for v in data:
            sketch.update(v)
        assert sketch.query_rank(250) == 3

    def test_space_is_sublinear(self):
        sketch = GKSketch(0.01)
        rng = np.random.default_rng(3)
        for v in rng.integers(0, 10**9, 20_000):
            sketch.update(int(v))
        # worst case O((1/eps) log(eps n)); generous constant
        assert sketch.tuple_count() < 20_000 / 4
        assert sketch.tuple_count() < (11 / (2 * 0.01)) * np.log2(
            2 * 0.01 * 20_000
        )


class TestBatchUpdates:
    def test_batch_equals_loop_on_accuracy(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, 10**6, 10_000)
        sketch = GKSketch(0.02)
        sketch.update_batch(data)
        assert sketch.n == len(data)
        assert_gk_guarantee(sketch, data, ranks=range(1, 10_001, 500))

    def test_multiple_batches(self):
        rng = np.random.default_rng(13)
        sketch = GKSketch(0.02)
        chunks = [rng.integers(0, 10**6, 3000) for _ in range(5)]
        for chunk in chunks:
            sketch.update_batch(chunk)
        data = np.concatenate(chunks)
        assert sketch.n == len(data)
        assert_gk_guarantee(sketch, data, ranks=range(1, len(data), 500))

    def test_batch_then_elementwise(self):
        rng = np.random.default_rng(17)
        sketch = GKSketch(0.05)
        chunk = rng.integers(0, 1000, 2000)
        sketch.update_batch(chunk)
        extra = rng.integers(0, 1000, 300)
        for v in extra:
            sketch.update(int(v))
        data = np.concatenate([chunk, extra])
        assert_gk_guarantee(sketch, data)

    def test_batch_preserves_min_max(self):
        rng = np.random.default_rng(19)
        sketch = GKSketch(0.05)
        chunk = rng.integers(0, 10**9, 5000)
        sketch.update_batch(chunk)
        assert sketch.min_value() == chunk.min()
        assert sketch.max_value() == chunk.max()

    def test_batch_space_stays_compressed(self):
        rng = np.random.default_rng(23)
        sketch = GKSketch(0.01)
        for _ in range(10):
            sketch.update_batch(rng.integers(0, 10**9, 10_000))
        assert sketch.tuple_count() < 3000

    def test_empty_batch_noop(self):
        sketch = GKSketch(0.1)
        sketch.update_batch(np.empty(0, dtype=np.int64))
        assert sketch.n == 0

    def test_small_batch_uses_elementwise_path(self):
        sketch = GKSketch(0.1)
        sketch.update_batch([3, 1, 2])
        assert sketch.n == 3
        assert sketch.min_value() == 1


class TestRankBounds:
    def test_bounds_bracket_true_rank(self):
        rng = np.random.default_rng(29)
        data = rng.integers(0, 10**6, 5000)
        sketch = GKSketch(0.02)
        for v in data:
            sketch.update(int(v))
        for probe in rng.integers(0, 10**6, 50):
            lo, hi = sketch.rank_bounds(int(probe))
            actual = true_rank(data, int(probe))
            assert lo <= actual <= hi

    def test_bounds_empty(self):
        assert GKSketch(0.1).rank_bounds(5) == (0, 0)


class TestGKProperty:
    @given(
        data=st.lists(st.integers(-(10**6), 10**6), min_size=1, max_size=600),
        eps=st.sampled_from([0.2, 0.1, 0.05]),
    )
    @settings(max_examples=60, deadline=None)
    def test_guarantee_holds_elementwise(self, data, eps):
        sketch = GKSketch(eps)
        for v in data:
            sketch.update(v)
        assert_gk_guarantee(sketch, data)

    @given(
        data=st.lists(st.integers(-(10**6), 10**6), min_size=300, max_size=900),
        eps=st.sampled_from([0.2, 0.1]),
    )
    @settings(max_examples=30, deadline=None)
    def test_guarantee_holds_batch(self, data, eps):
        sketch = GKSketch(eps)
        sketch.update_batch(np.asarray(data, dtype=np.int64))
        assert_gk_guarantee(sketch, data)


def _loop_query_rank(sketch, rank):
    """The original O(s) loop implementation, kept as a reference."""
    from repro.sketches.base import clamp_rank

    rank = clamp_rank(rank, sketch.n)
    allowed = sketch.epsilon * sketch.n
    rmin = 0
    for i, g in enumerate(sketch._g):
        rmin += g
        if rmin + sketch._delta[i] > rank + allowed:
            return sketch._values[max(0, i - 1)]
    return sketch._values[-1]


def _loop_rank_bounds(sketch, value):
    """The original O(s) loop implementation, kept as a reference."""
    if sketch.n == 0:
        return (0, 0)
    rmin = 0
    last_rmin = 0
    for i, v in enumerate(sketch._values):
        rmin += sketch._g[i]
        if v > value:
            return (last_rmin, max(last_rmin, rmin + sketch._delta[i] - 1))
        last_rmin = rmin
    return (last_rmin, sketch.n)


class TestVectorizedQueriesMatchLoops:
    """The cached-array query paths must agree with the loop reference."""

    @given(
        values=st.lists(
            st.integers(-(2**40), 2**40), min_size=1, max_size=400
        ),
        epsilon=st.sampled_from([0.001, 0.01, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_query_rank_equivalence(self, values, epsilon):
        sketch = GKSketch(epsilon)
        for value in values:
            sketch.update(value)
        for rank in {1, len(values) // 3, len(values) // 2, len(values)}:
            assert sketch.query_rank(rank) == _loop_query_rank(sketch, rank)

    @given(
        values=st.lists(
            st.integers(-1000, 1000), min_size=1, max_size=300
        ),
        probes=st.lists(st.integers(-1100, 1100), min_size=1, max_size=20),
        epsilon=st.sampled_from([0.01, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_bounds_equivalence(self, values, probes, epsilon):
        sketch = GKSketch(epsilon)
        for value in values:
            sketch.update(value)
        for probe in probes:
            assert sketch.rank_bounds(probe) == _loop_rank_bounds(
                sketch, probe
            )

    def test_equivalence_after_batch_updates(self):
        rng = np.random.default_rng(5)
        sketch = GKSketch(0.01)
        for _ in range(5):
            sketch.update_batch(rng.integers(0, 10**6, size=2000))
            # interleave scalar updates so both mutation paths invalidate
            for value in rng.integers(0, 10**6, size=10):
                sketch.update(int(value))
            for rank in (1, sketch.n // 2, sketch.n):
                assert sketch.query_rank(rank) == _loop_query_rank(
                    sketch, rank
                )
            for probe in rng.integers(0, 10**6, size=10):
                assert sketch.rank_bounds(int(probe)) == _loop_rank_bounds(
                    sketch, int(probe)
                )

    def test_cache_invalidated_by_update(self):
        sketch = GKSketch(0.1)
        sketch.update_batch(np.arange(1000))
        first = sketch.query_rank(500)
        assert sketch._query_arrays is not None
        sketch.update(10**9)  # must invalidate the cached arrays
        assert sketch._query_arrays is None
        assert sketch.rank_bounds(10**9)[1] == sketch.n
        assert sketch.query_rank(500) == _loop_query_rank(sketch, 500)
        assert isinstance(first, int)
