"""KLL sketch: protocol, accuracy, merging, and durability.

The cluster layer leans on three properties no other backend offers
together: a principled ``merge`` (rank error of the merged sketch stays
within the larger epsilon's bound), deterministic seeded compaction
(same seed + same feed => bit-identical state, so replays and
checkpoint restores reproduce answers exactly), and the standard sketch
protocol (drop-in behind ``EngineConfig.sketch_backend = "kll"``).
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.persistence import load_engine, save_engine
from repro.persistence.serialization import dump_kll, load_kll
from repro.sketches.kll import KLLSketch, k_for_epsilon


def true_rank(sorted_values, value):
    return int(np.searchsorted(sorted_values, value, side="right"))


def state_of(sketch):
    return (
        [list(level) for level in sketch._levels],
        sketch._n,
        sketch._min,
        sketch._max,
        sketch._rng.bit_generator.state,
    )


def seeded_stream(seed, size, kind="uniform"):
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        return rng.integers(0, 2**30, size=size, dtype=np.int64)
    if kind == "normal":
        return np.clip(
            np.rint(rng.normal(2**20, 2**16, size=size)), 0, 2**30
        ).astype(np.int64)
    if kind == "zipf":
        return np.minimum(
            rng.zipf(1.3, size=size).astype(np.int64), 2**30
        )
    raise ValueError(kind)


class TestProtocol:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            KLLSketch(0.0)
        with pytest.raises(ValueError):
            KLLSketch(1.5)
        with pytest.raises(ValueError):
            KLLSketch(0.01, k=1)

    def test_empty_queries_raise(self):
        sketch = KLLSketch(0.01)
        assert sketch.n == 0
        with pytest.raises(ValueError):
            sketch.query_rank(1)
        with pytest.raises(ValueError):
            sketch.min_value()
        with pytest.raises(ValueError):
            sketch.max_value()

    def test_small_stream_is_exact(self):
        sketch = KLLSketch(0.01, seed=3)
        for value in (50, 10, 40, 20, 30):
            sketch.update(value)
        assert sketch.n == 5
        assert sketch.min_value() == 10
        assert sketch.max_value() == 50
        # Nothing compacted yet: every rank answers exactly.
        assert [sketch.query_rank(r) for r in range(1, 6)] == [
            10, 20, 30, 40, 50,
        ]

    def test_rank_clamping(self):
        sketch = KLLSketch(0.01, seed=3)
        sketch.update_many(np.arange(100, dtype=np.int64))
        assert sketch.query_rank(-5) == sketch.query_rank(1)
        assert sketch.query_rank(10**9) == sketch.query_rank(100)

    def test_k_for_epsilon_monotone(self):
        ks = [k_for_epsilon(eps) for eps in (0.1, 0.05, 0.01, 0.001)]
        assert ks == sorted(ks)
        assert all(k >= 8 for k in ks)

    def test_query_ranks_matches_scalar(self):
        sketch = KLLSketch(0.02, seed=11)
        sketch.update_many(seeded_stream(1, 50_000))
        targets = np.asarray([1, 7, 500, 25_000, 49_999, 50_000])
        batch = sketch.query_ranks(targets)
        scalar = [sketch.query_rank(int(t)) for t in targets]
        assert batch.tolist() == scalar

    def test_memory_tracks_retained(self):
        sketch = KLLSketch(0.01, seed=0)
        sketch.update_many(seeded_stream(2, 200_000))
        assert sketch.retained() < 200_000 // 10
        assert sketch.memory_words() == sketch.retained() + 6


class TestDeterminism:
    def test_update_many_bit_identical_to_scalar(self):
        data = seeded_stream(17, 30_000)
        scalar = KLLSketch(0.01, seed=9)
        for value in data.tolist():
            scalar.update(value)
        chunked = KLLSketch(0.01, seed=9)
        for lo in range(0, data.size, 997):
            chunked.update_many(data[lo : lo + 997])
        one_shot = KLLSketch(0.01, seed=9)
        one_shot.update_many(data)
        assert state_of(scalar) == state_of(chunked) == state_of(one_shot)

    def test_snapshot_is_independent(self):
        sketch = KLLSketch(0.01, seed=5)
        sketch.update_many(seeded_stream(3, 10_000))
        frozen = sketch.snapshot()
        answers = [frozen.query_rank(r) for r in (1, 5_000, 10_000)]
        sketch.update_many(seeded_stream(4, 10_000))
        assert frozen.n == 10_000
        assert [
            frozen.query_rank(r) for r in (1, 5_000, 10_000)
        ] == answers
        # The snapshot continues the original RNG schedule: feeding the
        # same tail to snapshot and a fresh replay agrees bit for bit.
        replay = KLLSketch(0.01, seed=5)
        replay.update_many(seeded_stream(3, 10_000))
        replay.update_many(seeded_stream(4, 10_000))
        assert state_of(sketch) == state_of(replay)


class TestAccuracy:
    @pytest.mark.parametrize("kind", ["uniform", "normal", "zipf"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_rank_error_within_bound(self, kind, seed):
        epsilon = 0.01
        data = seeded_stream(seed, 100_000, kind)
        sketch = KLLSketch(epsilon, seed=seed)
        sketch.update_many(data)
        srt = np.sort(data)
        n = data.size
        allowed = epsilon * n
        for rank in (1, n // 100, n // 4, n // 2, 3 * n // 4, n):
            value = sketch.query_rank(rank)
            # true rank of the returned value brackets [rank_lo, rank_hi]
            lo = int(np.searchsorted(srt, value, side="left")) + 1
            hi = int(np.searchsorted(srt, value, side="right"))
            error = 0 if lo <= rank <= hi else min(
                abs(rank - lo), abs(rank - hi)
            )
            assert error <= allowed, (kind, seed, rank, error, allowed)

    def test_rank_bounds_contain_truth(self):
        epsilon = 0.02
        data = seeded_stream(23, 50_000)
        sketch = KLLSketch(epsilon, seed=23)
        sketch.update_many(data)
        srt = np.sort(data)
        for value in np.percentile(data, [1, 25, 50, 75, 99]).astype(int):
            lower, upper = sketch.rank_bounds(int(value))
            truth = true_rank(srt, int(value))
            assert lower <= truth <= upper, (value, lower, truth, upper)


class TestMerge:
    @pytest.mark.parametrize("parts", [2, 4, 8])
    def test_merged_error_within_bound(self, parts):
        epsilon = 0.01
        data = seeded_stream(31, 120_000)
        chunks = np.array_split(data, parts)
        sketches = []
        for index, chunk in enumerate(chunks):
            sketch = KLLSketch(epsilon, seed=index)
            sketch.update_many(chunk)
            sketches.append(sketch)
        merged = KLLSketch.merge_many(sketches, seed=99)
        assert merged.n == data.size
        srt = np.sort(data)
        n = data.size
        allowed = epsilon * n
        for rank in (1, n // 10, n // 2, 9 * n // 10, n):
            value = merged.query_rank(rank)
            lo = int(np.searchsorted(srt, value, side="left")) + 1
            hi = int(np.searchsorted(srt, value, side="right"))
            error = 0 if lo <= rank <= hi else min(
                abs(rank - lo), abs(rank - hi)
            )
            assert error <= allowed, (parts, rank, error, allowed)
        assert merged.min_value() == int(srt[0])
        assert merged.max_value() == int(srt[-1])

    def test_merge_commutative_bit_exact(self):
        a = KLLSketch(0.01, seed=1)
        a.update_many(seeded_stream(41, 40_000))
        b = KLLSketch(0.01, seed=2)
        b.update_many(seeded_stream(42, 60_000, "normal"))
        ab = a.merge(b, seed=7)
        ba = b.merge(a, seed=7)
        assert state_of(ab) == state_of(ba)

    def test_merge_associative_within_bound(self):
        epsilon = 0.01
        streams = [
            seeded_stream(50 + i, 30_000, kind)
            for i, kind in enumerate(["uniform", "normal", "zipf"])
        ]
        sketches = []
        for index, stream in enumerate(streams):
            sketch = KLLSketch(epsilon, seed=index)
            sketch.update_many(stream)
            sketches.append(sketch)
        left = sketches[0].merge(sketches[1], seed=5).merge(
            sketches[2], seed=5
        )
        right = sketches[0].merge(
            sketches[1].merge(sketches[2], seed=5), seed=5
        )
        flat = KLLSketch.merge_many(sketches, seed=5)
        data = np.sort(np.concatenate(streams))
        n = data.size
        allowed = epsilon * n
        for variant in (left, right, flat):
            assert variant.n == n
            for rank in (1, n // 4, n // 2, 3 * n // 4, n):
                value = variant.query_rank(rank)
                lo = int(np.searchsorted(data, value, side="left")) + 1
                hi = int(np.searchsorted(data, value, side="right"))
                error = 0 if lo <= rank <= hi else min(
                    abs(rank - lo), abs(rank - hi)
                )
                assert error <= allowed, (rank, error, allowed)

    def test_merge_adopts_widest_epsilon(self):
        coarse = KLLSketch(0.05, seed=1)
        fine = KLLSketch(0.01, seed=2)
        coarse.update_many(seeded_stream(61, 5_000))
        fine.update_many(seeded_stream(62, 5_000))
        merged = coarse.merge(fine)
        assert merged.epsilon == 0.05

    def test_merge_with_empty_is_identity_modulo_compaction(self):
        filled = KLLSketch(0.01, seed=3)
        filled.update_many(seeded_stream(71, 20_000))
        empty = KLLSketch(0.01, seed=4)
        merged = filled.merge(empty, seed=3)
        assert merged.n == 20_000
        assert merged.min_value() == filled.min_value()
        assert merged.max_value() == filled.max_value()


class TestDurability:
    def test_round_trip_preserves_state_and_rng(self):
        sketch = KLLSketch(0.01, seed=13)
        sketch.update_many(seeded_stream(81, 50_000))
        restored = load_kll(dump_kll(sketch))
        assert state_of(restored) == state_of(sketch)
        # Post-restore ingest replays the same compaction coin flips.
        tail = seeded_stream(82, 20_000)
        sketch.update_many(tail)
        restored.update_many(tail)
        assert state_of(restored) == state_of(sketch)

    def test_engine_checkpoint_round_trip_with_kll_backend(self, tmp_path):
        config = EngineConfig(
            epsilon=0.02, block_elems=100, sketch_backend="kll"
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(5)
        for _ in range(3):
            engine.stream_update_many(
                rng.integers(0, 2**28, 4_000, dtype=np.int64)
            )
            engine.end_time_step()
        live = rng.integers(0, 2**28, 2_000, dtype=np.int64)
        engine.stream_update_many(live)
        save_engine(engine, tmp_path / "wh")
        restored = load_engine(tmp_path / "wh")
        assert restored.config.sketch_backend == "kll"
        assert restored.m_stream == engine.m_stream
        for phi in (0.1, 0.5, 0.9):
            for mode in ("quick", "accurate"):
                assert (
                    restored.quantile(phi, mode=mode).value
                    == engine.quantile(phi, mode=mode).value
                ), (phi, mode)
        engine.close()
        restored.close()
