"""Tests for the RANDOM reservoir-sampling baseline."""

import numpy as np
import pytest

from repro.sketches import RandomSamplerSketch


class TestRandomSampler:
    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            RandomSamplerSketch(0)

    def test_for_epsilon_sizing(self):
        sketch = RandomSamplerSketch.for_epsilon(0.01, delta=0.01)
        # Hoeffding: s = ln(2/delta) / (2 eps^2) ~ 26 492
        assert 20_000 < sketch.sample_size < 40_000

    def test_for_epsilon_validation(self):
        with pytest.raises(ValueError):
            RandomSamplerSketch.for_epsilon(0.0)
        with pytest.raises(ValueError):
            RandomSamplerSketch.for_epsilon(0.1, delta=0.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            RandomSamplerSketch(10).query_rank(1)

    def test_small_stream_is_exact(self):
        sketch = RandomSamplerSketch(100, seed=0)
        for v in [5, 1, 9, 3]:
            sketch.update(v)
        assert sketch.query_rank(1) == 1
        assert sketch.query_rank(4) == 9

    def test_deterministic_with_seed(self):
        a = RandomSamplerSketch(50, seed=42)
        b = RandomSamplerSketch(50, seed=42)
        data = np.random.default_rng(0).integers(0, 1000, 2000)
        a.update_batch(data)
        b.update_batch(data)
        assert a.query_rank(1000) == b.query_rank(1000)

    def test_probabilistic_accuracy(self):
        sketch = RandomSamplerSketch.for_epsilon(0.05, delta=0.01, seed=7)
        rng = np.random.default_rng(8)
        data = rng.integers(0, 10**6, 50_000)
        sketch.update_batch(data)
        arr = np.sort(data)
        n = len(arr)
        for r in (n // 4, n // 2, 3 * n // 4):
            value = sketch.query_rank(r)
            actual = int(np.searchsorted(arr, value, side="right"))
            # 3x slack over the w.h.p. bound keeps flake probability tiny
            assert abs(actual - r) <= 3 * 0.05 * n

    def test_memory_words_fixed(self):
        sketch = RandomSamplerSketch(100)
        assert sketch.memory_words() == 104
        sketch.update_batch(np.arange(10_000))
        assert sketch.memory_words() == 104
