"""Tests for the sketch base helpers."""

import pytest

from repro.sketches import clamp_rank, rank_for_phi


class TestClampRank:
    def test_in_range(self):
        assert clamp_rank(5, 10) == 5

    def test_below(self):
        assert clamp_rank(0, 10) == 1
        assert clamp_rank(-5, 10) == 1

    def test_above(self):
        assert clamp_rank(11, 10) == 10


class TestRankForPhi:
    def test_median_of_odd(self):
        assert rank_for_phi(0.5, 101) == 51

    def test_ceil_semantics(self):
        # Definition 1: rank target is the smallest integer >= phi * n
        assert rank_for_phi(0.5, 10) == 5
        assert rank_for_phi(0.51, 10) == 6

    def test_extremes(self):
        assert rank_for_phi(1.0, 10) == 10
        assert rank_for_phi(1e-9, 10) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_for_phi(0.0, 10)
        with pytest.raises(ValueError):
            rank_for_phi(1.1, 10)
        with pytest.raises(ValueError):
            rank_for_phi(0.5, 0)
