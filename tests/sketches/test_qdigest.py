"""Unit and property tests for the Q-Digest sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches import QDigestSketch


def assert_qdigest_guarantee(sketch, data, ranks=None):
    """query_rank(r) must return a value with rank error <= eps * n.

    Q-Digest returns node range maxima, so the returned value may not
    be a stream element; the guarantee is on the value's rank interval.
    """
    arr = np.sort(np.asarray(data))
    n = len(arr)
    allowed = sketch.epsilon * n + 1e-9
    if ranks is None:
        ranks = [1, max(1, n // 4), max(1, n // 2), max(1, 3 * n // 4), n]
    for r in ranks:
        value = sketch.query_rank(r)
        high = int(np.searchsorted(arr, value, side="right"))
        low = int(np.searchsorted(arr, value, side="left")) + 1
        err = max(0, low - r, r - high)
        assert err <= allowed, (
            f"rank {r}: value {value} rank interval [{low},{high}], "
            f"allowed {allowed}"
        )


class TestBasics:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            QDigestSketch(0.0)

    def test_rejects_bad_universe(self):
        with pytest.raises(ValueError):
            QDigestSketch(0.1, universe_log2=0)
        with pytest.raises(ValueError):
            QDigestSketch(0.1, universe_log2=63)

    def test_rejects_out_of_universe_value(self):
        sketch = QDigestSketch(0.1, universe_log2=4)
        with pytest.raises(ValueError):
            sketch.update(16)
        with pytest.raises(ValueError):
            sketch.update(-1)

    def test_rejects_out_of_universe_batch(self):
        sketch = QDigestSketch(0.1, universe_log2=4)
        with pytest.raises(ValueError):
            sketch.update_many(np.asarray([1, 2, 99]))

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            QDigestSketch(0.1).query_rank(1)

    def test_single_element(self):
        sketch = QDigestSketch(0.1, universe_log2=8)
        sketch.update(42)
        assert sketch.query_rank(1) == 42

    def test_n_counts(self):
        sketch = QDigestSketch(0.1, universe_log2=8)
        sketch.update_many(np.arange(100))
        sketch.update(5)
        assert sketch.n == 101

    def test_memory_words(self):
        sketch = QDigestSketch(0.1, universe_log2=8)
        sketch.update_many(np.arange(200))
        assert sketch.memory_words() == 2 * sketch.node_count() + 4


class TestCompression:
    def test_space_stays_bounded(self):
        sketch = QDigestSketch(0.05, universe_log2=16)
        rng = np.random.default_rng(0)
        for _ in range(20):
            sketch.update_many(rng.integers(0, 2**16, 5000))
        # compressed bound is O(log(U)/eps); allow the 2x lazy slack
        assert sketch.node_count() <= sketch._max_nodes

    def test_compress_preserves_count(self):
        sketch = QDigestSketch(0.05, universe_log2=12)
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2**12, 50_000)
        sketch.update_many(data)
        assert sum(sketch._counts.values()) == len(data)


class TestAccuracy:
    def test_uniform(self):
        sketch = QDigestSketch(0.05, universe_log2=16)
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2**16, 20_000)
        sketch.update_many(data)
        assert_qdigest_guarantee(sketch, data, ranks=range(1, 20_001, 997))

    def test_skewed(self):
        sketch = QDigestSketch(0.05, universe_log2=20)
        rng = np.random.default_rng(3)
        data = np.minimum(rng.zipf(1.3, 20_000), 2**20 - 1)
        sketch.update_many(data)
        assert_qdigest_guarantee(sketch, data)

    def test_elementwise_matches_guarantee(self):
        sketch = QDigestSketch(0.1, universe_log2=10)
        rng = np.random.default_rng(4)
        data = rng.integers(0, 1024, 3000)
        for v in data:
            sketch.update(int(v))
        assert_qdigest_guarantee(sketch, data)

    def test_all_equal(self):
        sketch = QDigestSketch(0.1, universe_log2=10)
        sketch.update_many(np.full(1000, 77))
        assert sketch.query_rank(500) == 77


class TestQDigestProperty:
    @given(
        data=st.lists(st.integers(0, 1023), min_size=1, max_size=800),
        eps=st.sampled_from([0.2, 0.1]),
    )
    @settings(max_examples=50, deadline=None)
    def test_guarantee_holds(self, data, eps):
        sketch = QDigestSketch(eps, universe_log2=10)
        sketch.update_many(np.asarray(data, dtype=np.int64))
        assert_qdigest_guarantee(sketch, data)
