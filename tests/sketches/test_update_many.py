"""Every sketch accepts numpy batches through ``update_many``.

GK, KLL, Q-Digest and the exact oracle override it with bulk fast
paths; MRL and the sampler run the per-element loop under the standard
name.  Either way, feeding an array through ``update_many`` must be
indistinguishable from replaying it element by element (deterministic
sketches: identical state; seeded randomized sketches: identical
because the element order and RNG draws coincide).

``update_batch`` remains on every sketch: the base-protocol iterable
entry point for GK/exact/sampler, and a deprecated alias (with a
``DeprecationWarning``) on MRL and Q-Digest, whose bulk paths now
carry the protocol-standard ``update_many`` name.
"""

import numpy as np
import pytest

from repro.sketches.exact import ExactQuantiles
from repro.sketches.gk import GKSketch
from repro.sketches.kll import KLLSketch
from repro.sketches.mrl import MRL99Sketch
from repro.sketches.qdigest import QDigestSketch
from repro.sketches.random_sampler import RandomSamplerSketch


def scalar_fed(sketch, values):
    for value in values:
        sketch.update(int(value))
    return sketch


def make_all():
    return {
        "gk": lambda: GKSketch(0.01),
        "kll": lambda: KLLSketch(0.01, seed=5),
        "exact": lambda: ExactQuantiles(),
        "mrl": lambda: MRL99Sketch(buffer_size=64, num_buffers=4, seed=5),
        "qdigest": lambda: QDigestSketch(0.05, universe_log2=20),
        "sampler": lambda: RandomSamplerSketch(sample_size=128, seed=5),
    }


@pytest.mark.parametrize("name", sorted(make_all()))
def test_update_many_matches_scalar_replay(name):
    rng = np.random.default_rng(17)
    values = rng.integers(0, 2**20, size=200)  # below GK's bulk threshold
    via_loop = scalar_fed(make_all()[name](), values)
    via_array = make_all()[name]()
    via_array.update_many(values)
    assert via_array.n == via_loop.n == 200
    for rank in (1, 10, 100, 150, 200):
        assert via_array.query_rank(rank) == via_loop.query_rank(rank), rank


def test_update_many_flattens_and_ignores_empty():
    sketch = GKSketch(0.01)
    sketch.update_many(np.empty(0, dtype=np.int64))
    assert sketch.n == 0
    sketch.update_many(np.arange(6).reshape(2, 3))
    assert sketch.n == 6
    assert sketch.min_value() == 0
    assert sketch.max_value() == 5


def test_gk_update_many_equals_update_batch():
    rng = np.random.default_rng(23)
    values = rng.integers(0, 10**6, size=5000)
    a = GKSketch(0.01)
    a.update_many(values)
    b = GKSketch(0.01)
    b.update_batch(int(v) for v in values)  # iterable entry point
    assert a._values == b._values
    assert a._g == b._g
    assert a._delta == b._delta
    assert a.n == b.n == 5000


def test_gk_query_ranks_matches_scalar_queries():
    rng = np.random.default_rng(29)
    sketch = GKSketch(0.01)
    sketch.update_many(rng.integers(0, 10**6, size=20_000))
    targets = np.concatenate(
        [
            np.asarray([1, 2, 19_999, 20_000]),
            rng.integers(1, 20_000, size=200),
            np.asarray([-5, 0, 10**9]),  # clamped like query_rank
        ]
    )
    vectorized = sketch.query_ranks(targets)
    scalar = np.asarray(
        [sketch.query_rank(int(t)) for t in targets], dtype=np.int64
    )
    assert np.array_equal(vectorized, scalar)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: MRL99Sketch(buffer_size=64, num_buffers=4, seed=5),
        lambda: QDigestSketch(0.05, universe_log2=20),
    ],
    ids=["mrl", "qdigest"],
)
def test_update_batch_is_deprecated_alias(factory):
    rng = np.random.default_rng(31)
    values = rng.integers(0, 2**18, size=300)
    via_many = factory()
    via_many.update_many(values)
    via_alias = factory()
    with pytest.deprecated_call():
        via_alias.update_batch(values)
    assert via_alias.n == via_many.n == 300
    for rank in (1, 50, 150, 300):
        assert via_alias.query_rank(rank) == via_many.query_rank(rank)


def test_update_batch_alias_accepts_plain_iterables():
    values = [5, 1, 4, 2, 3] * 20
    sketch = QDigestSketch(0.05, universe_log2=20)
    with pytest.deprecated_call():
        sketch.update_batch(iter(values))
    assert sketch.n == 100
    mrl = MRL99Sketch(buffer_size=16, num_buffers=4, seed=1)
    with pytest.deprecated_call():
        mrl.update_batch(iter(values))
    assert mrl.n == 100


def test_base_protocol_update_batch_not_deprecated(recwarn):
    sketch = GKSketch(0.01)
    sketch.update_batch([3, 1, 2])
    oracle = ExactQuantiles()
    oracle.update_batch([3, 1, 2])
    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]
    assert not deprecations
    assert sketch.n == oracle.n == 3
