"""Every sketch accepts numpy batches through ``update_many``.

GK and the exact oracle override it with bulk fast paths; MRL,
Q-Digest and the sampler inherit the base-protocol per-element loop.
Either way, feeding an array through ``update_many`` must be
indistinguishable from replaying it element by element (deterministic
sketches: identical state; seeded randomized sketches: identical
because the element order and RNG draws coincide).
"""

import numpy as np
import pytest

from repro.sketches.exact import ExactQuantiles
from repro.sketches.gk import GKSketch
from repro.sketches.mrl import MRL99Sketch
from repro.sketches.qdigest import QDigestSketch
from repro.sketches.random_sampler import RandomSamplerSketch


def scalar_fed(sketch, values):
    for value in values:
        sketch.update(int(value))
    return sketch


def make_all():
    return {
        "gk": lambda: GKSketch(0.01),
        "exact": lambda: ExactQuantiles(),
        "mrl": lambda: MRL99Sketch(buffer_size=64, num_buffers=4, seed=5),
        "qdigest": lambda: QDigestSketch(0.05, universe_log2=20),
        "sampler": lambda: RandomSamplerSketch(sample_size=128, seed=5),
    }


@pytest.mark.parametrize("name", sorted(make_all()))
def test_update_many_matches_scalar_replay(name):
    rng = np.random.default_rng(17)
    values = rng.integers(0, 2**20, size=200)  # below GK's bulk threshold
    via_loop = scalar_fed(make_all()[name](), values)
    via_array = make_all()[name]()
    via_array.update_many(values)
    assert via_array.n == via_loop.n == 200
    for rank in (1, 10, 100, 150, 200):
        assert via_array.query_rank(rank) == via_loop.query_rank(rank), rank


def test_update_many_flattens_and_ignores_empty():
    sketch = GKSketch(0.01)
    sketch.update_many(np.empty(0, dtype=np.int64))
    assert sketch.n == 0
    sketch.update_many(np.arange(6).reshape(2, 3))
    assert sketch.n == 6
    assert sketch.min_value() == 0
    assert sketch.max_value() == 5


def test_gk_update_many_equals_update_batch():
    rng = np.random.default_rng(23)
    values = rng.integers(0, 10**6, size=5000)
    a = GKSketch(0.01)
    a.update_many(values)
    b = GKSketch(0.01)
    b.update_batch(int(v) for v in values)  # iterable entry point
    assert a._values == b._values
    assert a._g == b._g
    assert a._delta == b._delta
    assert a.n == b.n == 5000


def test_gk_query_ranks_matches_scalar_queries():
    rng = np.random.default_rng(29)
    sketch = GKSketch(0.01)
    sketch.update_many(rng.integers(0, 10**6, size=20_000))
    targets = np.concatenate(
        [
            np.asarray([1, 2, 19_999, 20_000]),
            rng.integers(1, 20_000, size=200),
            np.asarray([-5, 0, 10**9]),  # clamped like query_rank
        ]
    )
    vectorized = sketch.query_ranks(targets)
    scalar = np.asarray(
        [sketch.query_rank(int(t)) for t in targets], dtype=np.int64
    )
    assert np.array_equal(vectorized, scalar)
