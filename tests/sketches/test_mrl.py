"""Tests for the MRL99 randomized quantile sketch."""

import numpy as np
import pytest

from repro.sketches.mrl import MRL99Sketch


def rank_interval_error(data, value, target):
    arr = np.sort(np.asarray(data))
    high = int(np.searchsorted(arr, value, side="right"))
    low = int(np.searchsorted(arr, value, side="left")) + 1
    return max(0, low - target, target - high)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            MRL99Sketch(buffer_size=1)
        with pytest.raises(ValueError):
            MRL99Sketch(num_buffers=2)
        with pytest.raises(ValueError):
            MRL99Sketch.for_epsilon(0.0)
        with pytest.raises(ValueError):
            MRL99Sketch.for_epsilon(0.1, delta=1.0)

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            MRL99Sketch().query_rank(1)

    def test_small_stream_exact(self):
        sketch = MRL99Sketch(buffer_size=100, num_buffers=4, seed=0)
        for v in (5, 1, 9, 3):
            sketch.update(v)
        assert sketch.query_rank(1) == 1
        assert sketch.query_rank(4) == 9

    def test_n_counts_all_elements(self):
        sketch = MRL99Sketch(buffer_size=10, num_buffers=3, seed=0)
        sketch.update_many(range(1000))
        assert sketch.n == 1000

    def test_deterministic_with_seed(self):
        data = np.random.default_rng(0).integers(0, 10**6, 20_000)
        a = MRL99Sketch(buffer_size=100, num_buffers=5, seed=7)
        b = MRL99Sketch(buffer_size=100, num_buffers=5, seed=7)
        a.update_many(data)
        b.update_many(data)
        assert a.query_rank(10_000) == b.query_rank(10_000)

    def test_buffer_count_bounded(self):
        sketch = MRL99Sketch(buffer_size=50, num_buffers=5, seed=1)
        sketch.update_many(np.random.default_rng(1).integers(0, 100, 50_000))
        assert len(sketch._buffers) < 5

    def test_memory_sublinear(self):
        sketch = MRL99Sketch.for_epsilon(0.01, seed=2)
        sketch.update_many(
            np.random.default_rng(2).integers(0, 10**9, 100_000)
        )
        assert sketch.memory_words() < 100_000 / 10


class TestAccuracy:
    @pytest.mark.parametrize("seed", [3, 4, 5])
    def test_uniform_stream(self, seed):
        epsilon = 0.05
        sketch = MRL99Sketch.for_epsilon(epsilon, seed=seed)
        data = np.random.default_rng(seed).integers(0, 10**9, 50_000)
        sketch.update_many(data)
        n = len(data)
        for target in (1, n // 4, n // 2, 3 * n // 4, n):
            value = sketch.query_rank(target)
            err = rank_interval_error(data, value, target)
            # 3x slack over the w.h.p. bound keeps flake risk tiny
            assert err <= 3 * epsilon * n, (target, err)

    def test_sorted_stream(self):
        epsilon = 0.05
        sketch = MRL99Sketch.for_epsilon(epsilon, seed=6)
        data = np.arange(50_000)
        sketch.update_many(data)
        for target in (1, 12_500, 25_000, 37_500, 50_000):
            value = sketch.query_rank(target)
            err = rank_interval_error(data, value, target)
            assert err <= 3 * epsilon * len(data)

    def test_duplicate_heavy_stream(self):
        sketch = MRL99Sketch.for_epsilon(0.05, seed=8)
        data = np.random.default_rng(8).integers(0, 20, 30_000)
        sketch.update_many(data)
        value = sketch.query_rank(15_000)
        assert rank_interval_error(data, value, 15_000) <= 3 * 0.05 * 30_000
