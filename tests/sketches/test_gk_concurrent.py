"""GK sketch concurrency: copy-on-query snapshots under live updates."""

from __future__ import annotations

import threading

import numpy as np

from repro.sketches import GKSketch
from repro.sketches.base import rank_for_phi


def test_snapshot_is_frozen_against_further_updates():
    sketch = GKSketch(0.01)
    sketch.update_batch(np.arange(1000, dtype=np.int64))
    frozen = sketch.snapshot()
    assert frozen.n == 1000
    sketch.update_batch(np.arange(1000, 2000, dtype=np.int64))
    assert sketch.n == 2000
    assert frozen.n == 1000
    # The copy still answers, from the state at snapshot time.
    median = frozen.query_rank(rank_for_phi(0.5, frozen.n))
    assert abs(median - 500) <= 0.01 * 1000 + 1


def test_snapshot_races_concurrent_update_batches():
    sketch = GKSketch(0.02)
    stop = threading.Event()
    errors = []
    rng = np.random.default_rng(53)
    chunks = [
        rng.integers(0, 1_000_000, 500, dtype=np.int64)
        for _ in range(40)
    ]

    def writer() -> None:
        try:
            for chunk in chunks:
                if stop.is_set():
                    return
                sketch.update_batch(chunk)
        except BaseException as exc:  # pragma: no cover - fail loud
            errors.append(exc)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        seen = []
        while thread.is_alive():
            view = sketch.snapshot()
            # A snapshot is internally consistent: its count is frozen
            # and its rank queries are well-defined monotone values.
            n = view.n
            assert view.n == n
            if n:
                lo = view.query_rank(rank_for_phi(0.25, n))
                hi = view.query_rank(rank_for_phi(0.75, n))
                assert lo <= hi
            seen.append(n)
    finally:
        stop.set()
        thread.join()
    assert not errors
    # Counts never go backwards across snapshots.
    assert seen == sorted(seen)
    assert sketch.n == 40 * 500


def test_concurrent_point_updates_lose_nothing():
    sketch = GKSketch(0.05)

    def writer(base: int) -> None:
        for value in range(base, base + 2000):
            sketch.update(value)

    threads = [
        threading.Thread(target=writer, args=(i * 2000,))
        for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert sketch.n == 8000
    median = sketch.snapshot().query_rank(rank_for_phi(0.5, 8000))
    assert abs(median - 4000) <= 0.05 * 8000 + 1
