"""The ``update_batch`` shims warn exactly once per call and delegate."""

import warnings

import numpy as np
import pytest

from repro.sketches.mrl import MRL99Sketch
from repro.sketches.qdigest import QDigestSketch


def make_mrl():
    return MRL99Sketch(buffer_size=50, num_buffers=4, seed=3)


def make_qdigest():
    return QDigestSketch(epsilon=0.01, universe_log2=20)


@pytest.mark.parametrize(
    "factory", [make_mrl, make_qdigest], ids=["mrl", "qdigest"]
)
def test_update_batch_warns_exactly_once_per_call(factory):
    sketch = factory()
    values = list(range(100))
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sketch.update_batch(values)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    message = str(deprecations[0].message)
    assert "update_batch is deprecated" in message
    assert "update_many" in message
    # One warning *per call*, not per element or once per process.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sketch.update_batch(values)
    assert sum(
        issubclass(w.category, DeprecationWarning) for w in caught
    ) == 1


@pytest.mark.parametrize(
    "factory", [make_mrl, make_qdigest], ids=["mrl", "qdigest"]
)
def test_update_batch_delegates_to_update_many(factory):
    rng = np.random.default_rng(17)
    values = rng.integers(0, 2**19, size=3000)
    via_many = factory()
    via_many.update_many(np.asarray(values, dtype=np.int64))
    via_batch = factory()
    with pytest.warns(DeprecationWarning):
        via_batch.update_batch(int(v) for v in values)  # iterable path
    assert via_batch.n == via_many.n == len(values)
    for phi in (0.01, 0.1, 0.5, 0.9, 0.99):
        assert via_batch.quantile(phi) == via_many.quantile(phi)
