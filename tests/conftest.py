"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.storage import SimulatedDisk


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def disk() -> SimulatedDisk:
    return SimulatedDisk(block_elems=16)


@pytest.fixture
def small_engine() -> HybridQuantileEngine:
    """An engine sized for fast unit tests."""
    return HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)


def fill_engine(
    engine: HybridQuantileEngine,
    rng: np.random.Generator,
    steps: int = 5,
    batch: int = 1500,
    live: int = 1500,
    low: int = 0,
    high: int = 1_000_000,
) -> np.ndarray:
    """Load ``steps`` batches plus a live stream; return all data."""
    chunks = []
    for _ in range(steps):
        data = rng.integers(low, high, batch, dtype=np.int64)
        engine.stream_update_batch(data)
        engine.end_time_step()
        chunks.append(data)
    data = rng.integers(low, high, live, dtype=np.int64)
    engine.stream_update_batch(data)
    chunks.append(data)
    return np.concatenate(chunks)
