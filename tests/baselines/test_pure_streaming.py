"""Tests for the pure-streaming baseline."""

import numpy as np
import pytest

from repro import ExactQuantiles, PureStreamingEngine
from repro.sketches import GKSketch, QDigestSketch, RandomSamplerSketch
from repro.baselines import make_sketch


class TestMakeSketch:
    def test_kinds(self):
        assert isinstance(make_sketch("gk", 0.1), GKSketch)
        assert isinstance(make_sketch("qdigest", 0.1), QDigestSketch)
        assert isinstance(
            make_sketch("random", 0.1, seed=1), RandomSamplerSketch
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_sketch("hyperloglog", 0.1)


class TestPureStreamingEngine:
    def _run(self, kind="gk", epsilon=0.02, steps=4, batch=2000):
        rng = np.random.default_rng(5)
        engine = PureStreamingEngine(
            kind=kind, epsilon=epsilon, kappa=3, block_elems=10,
            universe_log2=20, seed=7,
        )
        oracle = ExactQuantiles()
        for _ in range(steps):
            data = rng.integers(0, 2**20, batch)
            engine.stream_update_batch(data)
            oracle.update_batch(data)
            engine.end_time_step()
        live = rng.integers(0, 2**20, batch)
        engine.stream_update_batch(live)
        oracle.update_batch(live)
        return engine, oracle

    def test_error_scales_with_n(self):
        epsilon = 0.02
        engine, oracle = self._run(epsilon=epsilon)
        result = engine.quantile(0.5)
        high = oracle.rank(result.value)
        low = oracle.rank_strict(result.value) + 1
        err = max(0, low - result.target_rank, result.target_rank - high)
        assert err <= epsilon * engine.n_total + 1

    def test_sketch_survives_time_steps(self):
        engine, _ = self._run()
        assert engine.sketch.n == engine.n_total == 10_000

    def test_qdigest_variant(self):
        engine, oracle = self._run(kind="qdigest")
        result = engine.quantile(0.5)
        high = oracle.rank(result.value)
        low = oracle.rank_strict(result.value) + 1
        err = max(0, low - result.target_rank, result.target_rank - high)
        assert err <= 0.02 * engine.n_total + 1

    def test_no_query_disk_accesses(self):
        engine, _ = self._run()
        assert engine.quantile(0.5).disk_accesses == 0

    def test_update_io_matches_hybrid_schedule_without_sort(self):
        """Load writes plus leveled merges, no sorting."""
        rng = np.random.default_rng(6)
        engine = PureStreamingEngine(
            kind="gk", epsilon=0.05, kappa=2, block_elems=10
        )
        reports = []
        for _ in range(3):
            engine.stream_update_batch(rng.integers(0, 100, 1000))
            reports.append(engine.end_time_step())
        assert reports[0].io_total == 100
        assert reports[0].io_sort == 0
        # third step: merge 2 x 100 blocks (read+write) + load 100
        assert reports[2].io_merge == 400
        assert reports[2].io_total == 500

    def test_memory_words(self):
        engine, _ = self._run()
        assert engine.memory_words() == engine.sketch.memory_words()
