"""Tests for the strawman (always fully sorted) baseline."""

import numpy as np

from repro import ExactQuantiles, StrawmanEngine


def run_strawman(rng, epsilon=0.05, steps=4, batch=1500):
    engine = StrawmanEngine(epsilon=epsilon, block_elems=10)
    oracle = ExactQuantiles()
    for _ in range(steps):
        data = rng.integers(0, 10**6, batch)
        engine.stream_update_batch(data)
        oracle.update_batch(data)
        engine.end_time_step()
    live = rng.integers(0, 10**6, batch)
    engine.stream_update_batch(live)
    oracle.update_batch(live)
    return engine, oracle


class TestStrawman:
    def test_accuracy_matches_hybrid_guarantee(self, rng):
        epsilon = 0.05
        engine, oracle = run_strawman(rng, epsilon)
        for phi in (0.1, 0.5, 0.9):
            result = engine.quantile(phi)
            high = oracle.rank(result.value)
            low = oracle.rank_strict(result.value) + 1
            err = max(0, low - result.target_rank, result.target_rank - high)
            assert err <= 1.5 * epsilon * engine.m_stream + 2

    def test_single_sorted_partition(self, rng):
        engine, _ = run_strawman(rng)
        assert engine.n_historical == 4 * 1500
        values = engine._partition.run.values
        assert np.all(np.diff(values) >= 0)

    def test_update_io_grows_linearly(self, rng):
        """Each step rewrites all history: the strawman's weakness."""
        engine = StrawmanEngine(epsilon=0.05, block_elems=10)
        totals = []
        for _ in range(5):
            engine.stream_update_batch(rng.integers(0, 100, 1000))
            totals.append(engine.end_time_step().io_total)
        # first step: write 100 blocks; step k: read (k-1)*100 + write k*100
        assert totals[0] == 100
        assert totals[1] == 100 + 200
        assert totals[4] == 400 + 500
        assert totals == sorted(totals)

    def test_update_io_exceeds_hybrid(self, rng):
        from repro import HybridQuantileEngine

        strawman = StrawmanEngine(epsilon=0.05, block_elems=10)
        hybrid = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=10)
        strawman_io = 0
        hybrid_io = 0
        for _ in range(10):
            data = rng.integers(0, 10**6, 1000)
            strawman.stream_update_batch(data)
            hybrid.stream_update_batch(data)
            strawman_io += strawman.end_time_step().io_total
            hybrid_io += hybrid.end_time_step().io_total
        assert strawman_io > hybrid_io

    def test_query_uses_few_disk_accesses(self, rng):
        engine, _ = run_strawman(rng)
        result = engine.quantile(0.5)
        assert 0 < result.disk_accesses < 50

    def test_memory_words_positive(self, rng):
        engine, _ = run_strawman(rng)
        assert engine.memory_words() > 0
