"""The closed/open-loop load harness: determinism and accounting."""

from __future__ import annotations

import threading
import time

from repro.core import ServingConfig
from repro.serving import LoadGenerator, QueryService
from repro.serving.loadgen import LoadResult


class TestDeterminism:
    def test_phi_plans_reproduce_across_instances(self, filled_engine):
        with QueryService(filled_engine) as service:
            a = LoadGenerator(service, seed=42)
            b = LoadGenerator(service, seed=42)
            assert a._phi_plan(50, stream=3) == b._phi_plan(50, stream=3)

    def test_plans_differ_across_streams_and_seeds(self, filled_engine):
        with QueryService(filled_engine) as service:
            gen = LoadGenerator(service, seed=42)
            other = LoadGenerator(service, seed=43)
            assert gen._phi_plan(50, 0) != gen._phi_plan(50, 1)
            assert gen._phi_plan(50, 0) != other._phi_plan(50, 0)

    def test_plan_draws_only_configured_phis(self, filled_engine):
        with QueryService(filled_engine) as service:
            gen = LoadGenerator(service, phis=(0.5, 0.9), seed=1)
            assert set(gen._phi_plan(200, 0)) == {0.5, 0.9}


class TestClosedLoop:
    def test_serves_every_request_and_answers_match(self, filled_engine):
        with QueryService(filled_engine) as service:
            gen = LoadGenerator(service, seed=7)
            result = gen.closed_loop(clients=4, requests_per_client=5)
            assert result.requests == 20
            assert result.served == 20
            assert result.rejected == 0
            assert len(result.answers) == 20
            assert result.throughput_qps > 0
            # The engine is quiescent, so every answer must equal the
            # direct quick response for its phi.
            for phi, value, epoch in result.answers:
                assert value == filled_engine.quantile(
                    phi, mode="quick"
                ).value
                assert epoch == filled_engine.epoch_stats.current_epoch

    def test_warmup_guarantees_a_real_first_batch(self, filled_engine):
        with QueryService(filled_engine) as service:
            gen = LoadGenerator(service, seed=7)
            result = gen.closed_loop(
                clients=8, requests_per_client=5, pause_until_queued=2
            )
            assert result.served == 40
            snapshot = service.metrics_snapshot()
            assert snapshot.max_batch >= 2
            assert snapshot.ts_merges < snapshot.served["quick"]
            assert snapshot.coalescing_ratio < 1.0


class TestOpenLoop:
    def test_all_admitted_when_queue_is_large(self, filled_engine):
        with QueryService(filled_engine) as service:
            gen = LoadGenerator(service, seed=7)
            result = gen.open_loop(
                rate_qps=10_000, total_requests=30, mode="quick"
            )
            assert result.served == 30
            assert result.rejected == 0

    def test_overload_sheds_with_typed_rejections(self, filled_engine):
        config = ServingConfig(max_queue=2)
        with QueryService(filled_engine, config) as service:
            gen = LoadGenerator(service, seed=7)
            service.pause()
            outcome = {}

            def run():
                outcome["result"] = gen.open_loop(
                    rate_qps=100_000, total_requests=20, mode="quick"
                )

            thread = threading.Thread(target=run)
            thread.start()
            # Admissions stop at the bound while the service is paused;
            # resume to let the two admitted requests complete.
            deadline = time.perf_counter() + 5.0
            while (
                sum(service.admission.rejections().values()) == 0
                and time.perf_counter() < deadline
            ):
                time.sleep(0.001)
            service.resume()
            thread.join(timeout=10.0)
            result = outcome["result"]
            assert result.served + result.rejected == 20
            assert result.rejected > 0
            snapshot = service.metrics_snapshot()
            assert snapshot.rejections == result.rejected


class TestLoadResult:
    def test_throughput_handles_zero_wall(self):
        result = LoadResult(
            requests=0, served=0, rejected=0, degraded=0, wall_seconds=0.0
        )
        assert result.throughput_qps == 0.0
