"""The quick-path coalescer: one pinned merge answers a whole batch."""

from __future__ import annotations

import pytest

from repro.serving import ServiceMetrics
from repro.serving.coalescer import answer_quick_batch, dedupe_key
from repro.serving.service import PendingQuery


def make_request(phi, window_steps=None, mode="quick"):
    return PendingQuery(phi, mode, mode, window_steps)


class TestAnswerQuickBatch:
    def test_whole_batch_rides_one_merge(self, filled_engine):
        metrics = ServiceMetrics()
        batch = [
            make_request(phi)
            for phi in (0.25, 0.5, 0.75, 0.5, 0.25, 0.99)
        ]
        answer_quick_batch(filled_engine, batch, metrics)
        snapshot = metrics.snapshot()
        assert snapshot.ts_merges == 1
        assert snapshot.coalesced_batches == 1
        assert snapshot.coalesced_requests == 6
        assert snapshot.max_batch == 6
        for request in batch:
            assert request.done
            result = request.result(timeout=1.0)
            want = filled_engine.quantile(request.phi, mode="quick")
            assert result.value == want.value
        # Every request of the batch was pinned at one epoch.
        assert len({r.epoch for r in batch}) == 1

    def test_duplicate_phis_share_one_answer(self, filled_engine):
        metrics = ServiceMetrics()
        batch = [make_request(0.5) for _ in range(8)]
        answer_quick_batch(filled_engine, batch, metrics)
        values = {r.result(timeout=1.0).value for r in batch}
        assert len(values) == 1

    def test_window_scopes_get_their_own_merge(self, filled_engine):
        metrics = ServiceMetrics()
        batch = [
            make_request(0.5),
            make_request(0.9),
            make_request(0.5, window_steps=1),
        ]
        answer_quick_batch(filled_engine, batch, metrics)
        snapshot = metrics.snapshot()
        assert snapshot.ts_merges == 2
        windowed = batch[2].result(timeout=1.0)
        want = filled_engine.quantile(0.5, mode="quick", window_steps=1)
        assert windowed.value == want.value

    def test_failure_fans_out_to_every_waiter(self):
        class BrokenEngine:
            def pin(self):
                raise RuntimeError("pin exploded")

        metrics = ServiceMetrics()
        batch = [make_request(0.5), make_request(0.9)]
        with pytest.raises(RuntimeError, match="pin exploded"):
            answer_quick_batch(BrokenEngine(), batch, metrics)
        for request in batch:
            assert request.done
            with pytest.raises(RuntimeError, match="pin exploded"):
                request.result(timeout=1.0)
        # A failed batch spends no merges.
        assert metrics.snapshot().ts_merges == 0


class TestDedupeKey:
    def test_equal_for_identical_probes(self):
        a = make_request(0.95, window_steps=4, mode="accurate")
        b = make_request(0.95, window_steps=4, mode="accurate")
        assert dedupe_key(a) == dedupe_key(b)

    def test_distinct_for_different_scope(self):
        a = make_request(0.95, mode="accurate")
        b = make_request(0.95, window_steps=4, mode="accurate")
        c = make_request(0.5, mode="accurate")
        assert dedupe_key(a) != dedupe_key(b)
        assert dedupe_key(a) != dedupe_key(c)
