"""Concurrency stress: many clients querying during active ingest.

The serving layer's correctness claim is *snapshot consistency*: every
answer is produced against one pinned (HS, SS, partition-set) view, and
answering the same phi against the same pinned view is deterministic.
This test records every handle the service pins while N client threads
hammer it during live background ingest, then replays each served
``(phi, value, epoch)`` against the recorded handles — every answer
must be bit-identical to a replay at its epoch.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.core import EngineConfig, ServingConfig
from repro.serving import LoadGenerator, QueryService

PHIS = (0.25, 0.5, 0.75, 0.95, 0.99)


@pytest.mark.slow
@pytest.mark.serving
def test_concurrent_queries_replay_bit_identical_per_epoch():
    config = EngineConfig(
        epsilon=0.02, kappa=3, block_elems=64, ingest_mode="background"
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(17)
    engine.stream_update_batch(
        rng.integers(0, 1_000_000, 1500, dtype=np.int64)
    )
    engine.end_time_step()

    # Record every handle the service pins; released handles keep
    # answering (their references stay valid in-process), which is
    # exactly what makes the replay possible.
    recorded = []
    original_pin = engine.pin

    def recording_pin():
        handle = original_pin()
        recorded.append(handle)
        return handle

    engine.pin = recording_pin

    ingest_error = []

    def ingest(steps: int) -> None:
        try:
            for _ in range(steps):
                engine.stream_update_batch(
                    rng.integers(0, 1_000_000, 1500, dtype=np.int64)
                )
                engine.end_time_step()
        except BaseException as exc:  # pragma: no cover - fail loud
            ingest_error.append(exc)

    service = QueryService(
        engine, ServingConfig(coalesce=True, accurate_workers=1)
    )
    generator = LoadGenerator(service, phis=PHIS, seed=23)
    ingester = threading.Thread(target=ingest, args=(5,))
    ingester.start()
    try:
        result = generator.closed_loop(clients=4, requests_per_client=15)
    finally:
        ingester.join()
        service.close()
        engine.flush()

    assert not ingest_error
    assert result.served == 4 * 15
    assert result.rejected == 0

    # Replay: collect, per (phi, epoch), the answers the recorded
    # handles produce.  Every served answer must match one of the
    # handles pinned at its epoch — no torn or mixed-state reads.
    allowed = {}
    for handle in recorded:
        for phi in PHIS:
            key = (phi, handle.epoch)
            allowed.setdefault(key, set()).add(
                handle.quantile(phi, mode="quick").value
            )
    for phi, value, epoch in result.answers:
        assert value in allowed[(phi, epoch)], (
            f"answer {value} for phi={phi} at epoch {epoch} does not "
            f"match any pinned view {allowed.get((phi, epoch))}"
        )

    # All six seals (one before, five during) bumped the epoch, and the
    # background archiver adopted every batch.
    stats = engine.epoch_stats
    assert stats.seal_bumps == 6
    assert stats.adopt_bumps == 6
    assert stats.live_pins == 0
    assert stats.peak_pins >= 1
    engine.close()


@pytest.mark.slow
@pytest.mark.serving
def test_mixed_modes_under_ingest_serve_everything():
    config = EngineConfig(
        epsilon=0.02, kappa=3, block_elems=64, ingest_mode="background"
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(29)
    engine.stream_update_batch(
        rng.integers(0, 1_000_000, 2000, dtype=np.int64)
    )
    engine.end_time_step()

    stop = threading.Event()

    def ingest() -> None:
        while not stop.is_set():
            engine.stream_update_batch(
                rng.integers(0, 1_000_000, 500, dtype=np.int64)
            )
            engine.end_time_step()

    ingester = threading.Thread(target=ingest)
    ingester.start()
    try:
        with QueryService(engine) as service:
            quick = LoadGenerator(service, phis=PHIS, seed=31)
            accurate = LoadGenerator(service, phis=PHIS, seed=37)
            q = quick.closed_loop(clients=3, requests_per_client=10)
            a = accurate.closed_loop(
                clients=2, requests_per_client=3, mode="accurate"
            )
            snapshot = service.metrics_snapshot()
    finally:
        stop.set()
        ingester.join()
        engine.flush()
    assert q.served == 30
    assert a.served == 6
    assert snapshot.served == {"quick": 30, "accurate": 6}
    assert snapshot.requests_served == 36
    # Latency histograms saw every request.
    assert snapshot.latency["quick"].count == 30
    assert snapshot.latency["accurate"].count == 6
    engine.close()
