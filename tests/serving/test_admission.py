"""Admission control: bounded queues, typed rejection, degradation."""

from __future__ import annotations

import pytest

from repro.core import ServingConfig
from repro.serving import AdmissionController, Overloaded


def controller(**kwargs) -> AdmissionController:
    return AdmissionController(ServingConfig(**kwargs))


class TestOverloaded:
    def test_carries_typed_fields(self):
        error = Overloaded("accurate", queue_depth=7, bound=4)
        assert isinstance(error, RuntimeError)
        assert error.mode == "accurate"
        assert error.queue_depth == 7
        assert error.bound == 4
        assert "7/4" in str(error)


class TestAdmissionController:
    def test_quick_bound_enforced(self):
        ctrl = controller(max_queue=2)
        assert ctrl.admit("quick") == "quick"
        assert ctrl.admit("quick") == "quick"
        with pytest.raises(Overloaded) as info:
            ctrl.admit("quick")
        assert info.value.mode == "quick"
        assert info.value.bound == 2
        assert ctrl.rejections() == {"quick": 1, "accurate": 0}

    def test_release_frees_slot(self):
        ctrl = controller(max_queue=1)
        ctrl.admit("quick")
        with pytest.raises(Overloaded):
            ctrl.admit("quick")
        ctrl.release("quick")
        assert ctrl.admit("quick") == "quick"
        assert ctrl.queue_depth == 1

    def test_accurate_queue_is_separately_bounded(self):
        ctrl = controller(max_queue=8, accurate_queue=1)
        assert ctrl.admit("accurate") == "accurate"
        with pytest.raises(Overloaded) as info:
            ctrl.admit("accurate")
        assert info.value.mode == "accurate"
        assert info.value.bound == 1
        # Quick admissions are untouched by the accurate bound.
        assert ctrl.admit("quick") == "quick"

    def test_quick_load_counts_against_shared_bound(self):
        ctrl = controller(max_queue=2)
        ctrl.admit("quick")
        ctrl.admit("accurate")
        with pytest.raises(Overloaded):
            ctrl.admit("accurate")

    def test_degrade_on_overload_downgrades_accurate(self):
        ctrl = controller(
            max_queue=8, accurate_queue=1, degrade_on_overload=True
        )
        assert ctrl.admit("accurate") == "accurate"
        # The accurate queue is full but the total has room: degrade.
        assert ctrl.admit("accurate") == "quick"
        assert ctrl.degraded_admissions == 1
        assert ctrl.waiting("quick") == 1

    def test_degrade_still_rejects_when_everything_is_full(self):
        ctrl = controller(
            max_queue=2, accurate_queue=1, degrade_on_overload=True
        )
        ctrl.admit("accurate")
        ctrl.admit("quick")
        with pytest.raises(Overloaded) as info:
            ctrl.admit("accurate")
        assert info.value.bound == 2
        assert ctrl.rejections()["accurate"] == 1

    def test_waiting_per_mode(self):
        ctrl = controller(max_queue=8, accurate_queue=4)
        ctrl.admit("quick")
        ctrl.admit("quick")
        ctrl.admit("accurate")
        assert ctrl.waiting("quick") == 2
        assert ctrl.waiting("accurate") == 1
        assert ctrl.queue_depth == 3


class TestServingConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ServingConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServingConfig(coalesce_window_ms=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(quick_workers=0)
        with pytest.raises(ValueError):
            ServingConfig(accurate_queue=0)

    def test_accurate_queue_defaults_to_max_queue(self):
        config = ServingConfig(max_queue=16)
        assert config.accurate_queue_bound == 16
        split = ServingConfig(max_queue=16, accurate_queue=4)
        assert split.accurate_queue_bound == 4
