"""QueryService end-to-end: dispatch, overload, dedup, monitoring."""

from __future__ import annotations

import time

import pytest

from repro.core import QuantileWatcher, ServingConfig
from repro.serving import Overloaded, QueryService


def wait_until(predicate, timeout=5.0):
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestDispatch:
    def test_quick_matches_direct_engine_answer(self, filled_engine):
        with QueryService(filled_engine) as service:
            for phi in (0.25, 0.5, 0.99):
                served = service.quantile(phi, timeout=5.0)
                direct = filled_engine.quantile(phi, mode="quick")
                assert served.value == direct.value
                assert served.mode == "quick"

    def test_accurate_matches_direct_engine_answer(self, filled_engine):
        with QueryService(filled_engine) as service:
            served = service.quantile(0.5, mode="accurate", timeout=10.0)
            direct = filled_engine.quantile(0.5, mode="accurate")
            assert served.value == direct.value
            assert served.mode == "accurate"

    def test_window_scope_routed_through(self, filled_engine):
        with QueryService(filled_engine) as service:
            served = service.quantile(0.5, window_steps=1, timeout=5.0)
            direct = filled_engine.quantile(
                0.5, mode="quick", window_steps=1
            )
            assert served.value == direct.value

    def test_paused_submissions_coalesce_into_one_batch(
        self, filled_engine
    ):
        with QueryService(filled_engine) as service:
            service.pause()
            requests = [
                service.submit(phi)
                for phi in (0.25, 0.5, 0.75, 0.95, 0.99)
            ]
            assert service.queue_depth == 5
            service.resume()
            for request in requests:
                request.result(timeout=5.0)
            snapshot = service.metrics_snapshot()
            assert snapshot.served["quick"] == 5
            assert snapshot.max_batch == 5
            assert snapshot.ts_merges == 1
            assert snapshot.coalescing_ratio < 1.0
            # One pinned epoch served the whole batch.
            assert len({r.epoch for r in requests}) == 1

    def test_coalescing_disabled_pays_per_request(self, filled_engine):
        config = ServingConfig(coalesce=False)
        with QueryService(filled_engine, config) as service:
            service.pause()
            requests = [service.submit(0.5) for _ in range(4)]
            service.resume()
            for request in requests:
                request.result(timeout=5.0)
            snapshot = service.metrics_snapshot()
            assert snapshot.served["quick"] == 4
            assert snapshot.ts_merges >= 4

    def test_duplicate_accurate_probes_share_one_search(
        self, filled_engine
    ):
        config = ServingConfig(accurate_workers=1)
        with QueryService(filled_engine, config) as service:
            service.pause()
            requests = [
                service.submit(0.95, mode="accurate") for _ in range(4)
            ]
            service.resume()
            values = {r.result(timeout=10.0).value for r in requests}
            assert len(values) == 1
            snapshot = service.metrics_snapshot()
            assert snapshot.served["accurate"] == 4
            assert snapshot.deduped_probes == 3

    def test_close_serves_the_backlog_first(self, filled_engine):
        service = QueryService(filled_engine)
        service.pause()
        requests = [service.submit(0.5) for _ in range(3)]
        service.close()
        for request in requests:
            assert request.result(timeout=5.0).value is not None
        assert service.queue_depth == 0

    def test_drain_blocks_until_empty(self, filled_engine):
        with QueryService(filled_engine) as service:
            requests = [service.submit(0.5) for _ in range(8)]
            service.drain()
            assert service.queue_depth == 0
            # Drain empties the queues; the in-flight batch resolves
            # promptly afterwards.
            for request in requests:
                request.result(timeout=5.0)

    def test_drain_refuses_while_paused(self, filled_engine):
        with QueryService(filled_engine) as service:
            service.pause()
            service.submit(0.5)
            with pytest.raises(RuntimeError):
                service.drain()
            service.resume()
            service.drain()


class TestValidationAndShutdown:
    def test_submit_after_close_raises(self, filled_engine):
        service = QueryService(filled_engine)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(0.5)

    def test_invalid_arguments(self, filled_engine):
        with QueryService(filled_engine) as service:
            with pytest.raises(ValueError):
                service.submit(0.5, mode="fast")
            with pytest.raises(ValueError):
                service.submit(0.0)
            with pytest.raises(ValueError):
                service.submit(1.5)

    def test_result_timeout(self, filled_engine):
        with QueryService(filled_engine) as service:
            service.pause()
            request = service.submit(0.5)
            with pytest.raises(TimeoutError):
                request.result(timeout=0.01)
            service.resume()
            request.result(timeout=5.0)


class TestOverload:
    def test_full_queue_rejects_with_typed_error(self, filled_engine):
        config = ServingConfig(
            max_queue=8, accurate_queue=1, accurate_workers=1
        )
        with QueryService(filled_engine, config) as service:
            service.pause()
            admitted = service.submit(0.5, mode="accurate")
            with pytest.raises(Overloaded) as info:
                service.submit(0.5, mode="accurate")
            assert info.value.mode == "accurate"
            assert info.value.bound == 1
            snapshot = service.metrics_snapshot()
            assert snapshot.rejections == 1
            assert snapshot.rejected["accurate"] == 1
            service.resume()
            admitted.result(timeout=10.0)

    def test_degrade_on_overload_serves_quick_instead(
        self, filled_engine
    ):
        config = ServingConfig(
            max_queue=8,
            accurate_queue=1,
            accurate_workers=1,
            degrade_on_overload=True,
        )
        with QueryService(filled_engine, config) as service:
            service.pause()
            first = service.submit(0.5, mode="accurate")
            second = service.submit(0.5, mode="accurate")
            assert not first.degraded_by_overload
            assert second.degraded_by_overload
            assert second.effective_mode == "quick"
            service.resume()
            assert first.result(timeout=10.0).mode == "accurate"
            assert second.result(timeout=10.0).mode == "quick"
            snapshot = service.metrics_snapshot()
            assert snapshot.degraded_to_quick == 1
            assert snapshot.rejections == 0


class TestMonitoringIntegration:
    def test_watch_service_fires_on_queue_depth(self, filled_engine):
        with QueryService(filled_engine) as service:
            watcher = QuantileWatcher(filled_engine)
            rule = watcher.watch_service(
                "svc-depth",
                service.metrics_snapshot,
                max_queue_depth=0,
            )
            assert watcher.service_rules == [rule]
            assert watcher.check_service() == []
            service.pause()
            service.submit(0.5)
            service.submit(0.75)
            alerts = watcher.check_service()
            assert len(alerts) == 1
            assert alerts[0].breaches == ("queue_depth",)
            assert alerts[0].queue_depth == 2
            service.resume()
            service.drain()
            assert wait_until(lambda: not watcher.check_service())

    def test_watch_service_fires_on_rejections(self, filled_engine):
        config = ServingConfig(max_queue=1)
        with QueryService(filled_engine, config) as service:
            watcher = QuantileWatcher(filled_engine)
            watcher.watch_service(
                "svc-rejects",
                service.metrics_snapshot,
                max_rejections=0,
            )
            service.pause()
            service.submit(0.5)
            with pytest.raises(Overloaded):
                service.submit(0.5)
            alerts = watcher.check_service()
            assert [a.breaches for a in alerts] == [("rejections",)]
            watcher.remove("svc-rejects")
            assert watcher.check_service() == []
            service.resume()

    def test_duplicate_monitor_names_rejected(self, filled_engine):
        with QueryService(filled_engine) as service:
            watcher = QuantileWatcher(filled_engine)
            watcher.watch_service(
                "svc", service.metrics_snapshot, max_queue_depth=10
            )
            with pytest.raises(ValueError):
                watcher.watch_service(
                    "svc", service.metrics_snapshot, max_queue_depth=10
                )
            with pytest.raises(ValueError):
                watcher.watch_health("svc", max_disk_faults=1)
