"""Fixtures for the serving-layer test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.core import EngineConfig

PHIS = (0.25, 0.5, 0.75, 0.95, 0.99)


def build_filled_engine(
    steps: int = 4,
    batch: int = 1200,
    live: int = 800,
    seed: int = 11,
    ingest_mode: str = "sync",
    epsilon: float = 0.02,
    kappa: int = 3,
) -> HybridQuantileEngine:
    """A small engine with sealed history plus a live stream tail."""
    config = EngineConfig(
        epsilon=epsilon,
        kappa=kappa,
        block_elems=64,
        ingest_mode=ingest_mode,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        engine.stream_update_batch(
            rng.integers(0, 1_000_000, batch, dtype=np.int64)
        )
        engine.end_time_step()
    if ingest_mode == "background":
        engine.flush()
    if live:
        engine.stream_update_batch(
            rng.integers(0, 1_000_000, live, dtype=np.int64)
        )
    return engine


@pytest.fixture
def filled_engine() -> HybridQuantileEngine:
    engine = build_filled_engine()
    yield engine
    engine.close()
