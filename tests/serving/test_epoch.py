"""Epoch registry and pinned snapshot-handle semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EpochRegistry

from .conftest import build_filled_engine


class TestEpochRegistry:
    def test_bump_reasons_counted_separately(self):
        registry = EpochRegistry()
        assert registry.current == 0
        registry.bump("seal")
        registry.bump("seal")
        registry.bump("adopt")
        stats = registry.stats()
        assert stats.current_epoch == 3
        assert stats.seal_bumps == 2
        assert stats.adopt_bumps == 1

    def test_pin_release_refcounts(self):
        registry = EpochRegistry()
        registry.pin(0)
        registry.pin(0)
        stats = registry.stats()
        assert stats.live_pins == 2
        assert stats.peak_pins == 2
        registry.release(0)
        registry.release(0)
        stats = registry.stats()
        assert stats.live_pins == 0
        # Epoch 0 is still current, so it is not retired.
        assert stats.epochs_retired == 0

    def test_stale_epoch_retires_when_last_pin_releases(self):
        registry = EpochRegistry()
        registry.pin(0)
        registry.bump("seal")
        assert registry.stats().epochs_retired == 0
        registry.release(0)
        assert registry.stats().epochs_retired == 1

    def test_ts_merges_counter(self):
        registry = EpochRegistry()
        registry.note_ts_merge()
        registry.note_ts_merge()
        assert registry.stats().ts_merges == 2


class TestEngineEpochs:
    def test_seal_bumps_epoch(self):
        engine = build_filled_engine(steps=3, live=0)
        try:
            stats = engine.epoch_stats
            assert stats.seal_bumps == 3
            assert stats.current_epoch == 3
        finally:
            engine.close()

    def test_background_adoption_bumps_epoch(self):
        engine = build_filled_engine(
            steps=3, live=0, ingest_mode="background"
        )
        try:
            stats = engine.epoch_stats
            assert stats.seal_bumps == 3
            assert stats.adopt_bumps == 3
        finally:
            engine.close()

    def test_stream_updates_do_not_bump_epoch(self):
        engine = build_filled_engine(steps=2, live=0)
        try:
            before = engine.epoch_stats.current_epoch
            engine.stream_update_batch(np.arange(100, dtype=np.int64))
            assert engine.epoch_stats.current_epoch == before
        finally:
            engine.close()


class TestSnapshotHandle:
    def test_pinned_view_is_frozen_under_ingest(self, filled_engine):
        rng = np.random.default_rng(5)
        with filled_engine.pin() as handle:
            n_before = handle.n_total
            value_before = handle.quantile(0.5, mode="quick").value
            filled_engine.stream_update_batch(
                rng.integers(0, 1_000_000, 2000, dtype=np.int64)
            )
            filled_engine.end_time_step()
            # The pinned handle still answers from its frozen view.
            assert handle.n_total == n_before
            assert handle.quantile(0.5, mode="quick").value == value_before
        with filled_engine.pin() as fresh:
            assert fresh.n_total == n_before + 2000
            assert fresh.epoch > handle.epoch

    def test_full_scope_merge_is_cached(self, filled_engine):
        with filled_engine.pin() as handle:
            handle.quantile_many((0.25, 0.5, 0.75), mode="quick")
            handle.quantile(0.9, mode="quick")
            assert handle.ts_merges_built == 1
            # A window scope needs its own merge.
            handle.quantile(0.5, mode="quick", window_steps=1)
            assert handle.ts_merges_built == 2

    def test_quantile_many_matches_per_phi_quick(self, filled_engine):
        phis = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        with filled_engine.pin() as handle:
            batch = handle.quantile_many(phis, mode="quick")
            singles = [
                handle.quantile(phi, mode="quick") for phi in phis
            ]
        for got, want in zip(batch, singles):
            assert got.value == want.value
            assert got.target_rank == want.target_rank
            assert got.total_size == want.total_size

    def test_released_handle_still_answers(self, filled_engine):
        handle = filled_engine.pin()
        value = handle.quantile(0.5, mode="quick").value
        handle.release()
        assert handle.released
        assert handle.quantile(0.5, mode="quick").value == value
        # Idempotent: a second release must not double-decrement.
        handle.release()
        assert filled_engine.epoch_stats.live_pins == 0

    def test_empty_engine_rejects_queries(self):
        engine = build_filled_engine(steps=0, live=0)
        try:
            with engine.pin() as handle:
                with pytest.raises(ValueError):
                    handle.quantile(0.5)
                with pytest.raises(ValueError):
                    handle.quantile_many([0.5])
        finally:
            engine.close()

    def test_invalid_mode_rejected(self, filled_engine):
        with filled_engine.pin() as handle:
            with pytest.raises(ValueError):
                handle.quantile(0.5, mode="fast")
            with pytest.raises(ValueError):
                handle.quantile_many([0.5], mode="fast")
