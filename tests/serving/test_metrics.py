"""Service metrics: GK-backed latency histograms and counters."""

from __future__ import annotations

import threading

from repro.serving import ServiceMetrics
from repro.serving.metrics import LatencySummary, MetricsSnapshot


class TestLatencyHistograms:
    def test_percentiles_from_known_distribution(self):
        metrics = ServiceMetrics(epsilon=0.01)
        # 1ms..1000ms, uniformly; p50 should land near 500ms.
        for ms in range(1, 1001):
            metrics.record("quick", ms / 1e3)
        snapshot = metrics.snapshot()
        summary = snapshot.latency["quick"]
        assert summary.count == 1000
        assert 0.45 <= summary.p50 <= 0.55
        assert 0.90 <= summary.p95 <= 1.00
        assert summary.p99 >= summary.p95 >= summary.p50
        assert snapshot.p99("quick") == summary.p99

    def test_modes_are_independent(self):
        metrics = ServiceMetrics()
        metrics.record("quick", 0.001)
        metrics.record("accurate", 0.5)
        snapshot = metrics.snapshot()
        assert snapshot.served == {"quick": 1, "accurate": 1}
        assert snapshot.latency["quick"].p99 < 0.01
        assert snapshot.latency["accurate"].p99 >= 0.4

    def test_empty_summary_reads_zero(self):
        snapshot = ServiceMetrics().snapshot()
        assert snapshot.latency["quick"] == LatencySummary.empty()
        assert snapshot.p99("quick") == 0.0
        assert snapshot.p99("accurate") == 0.0

    def test_negative_latency_clamped(self):
        metrics = ServiceMetrics()
        metrics.record("quick", -0.5)
        assert metrics.snapshot().latency["quick"].count == 1

    def test_recording_races_snapshotting(self):
        metrics = ServiceMetrics()
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                metrics.record("quick", 0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                snapshot = metrics.snapshot()
                summary = snapshot.latency["quick"]
                assert summary.count >= 0
                assert summary.p50 <= summary.p95 <= summary.p99
        finally:
            stop.set()
            thread.join()


class TestCounters:
    def test_batch_accounting(self):
        metrics = ServiceMetrics()
        metrics.note_batch(requests=8, merges=1)
        metrics.note_batch(requests=3, merges=2)
        metrics.note_merges(4)
        metrics.note_dedup(2)
        metrics.note_degraded()
        metrics.observe_queue_depth(5)
        metrics.observe_queue_depth(2)
        snapshot = metrics.snapshot()
        assert snapshot.coalesced_batches == 2
        assert snapshot.coalesced_requests == 11
        assert snapshot.max_batch == 8
        assert snapshot.ts_merges == 7
        assert snapshot.deduped_probes == 2
        assert snapshot.degraded_to_quick == 1
        assert snapshot.peak_queue_depth == 5

    def test_snapshot_peak_includes_current_depth(self):
        metrics = ServiceMetrics()
        metrics.observe_queue_depth(3)
        snapshot = metrics.snapshot(queue_depth=9)
        assert snapshot.queue_depth == 9
        assert snapshot.peak_queue_depth == 9


class TestMetricsSnapshot:
    def make(self, served_quick, ts_merges):
        return MetricsSnapshot(
            served={"quick": served_quick, "accurate": 2},
            rejected={"quick": 1, "accurate": 3},
            degraded_to_quick=0,
            queue_depth=0,
            peak_queue_depth=0,
            coalesced_batches=0,
            coalesced_requests=0,
            max_batch=0,
            ts_merges=ts_merges,
            deduped_probes=0,
        )

    def test_totals(self):
        snapshot = self.make(served_quick=10, ts_merges=2)
        assert snapshot.requests_served == 12
        assert snapshot.rejections == 4

    def test_coalescing_ratio(self):
        assert self.make(10, 2).coalescing_ratio == 0.2
        # No quick requests served yet: the ratio defaults to 1.0
        # (no sharing demonstrated) rather than dividing by zero.
        assert self.make(0, 0).coalescing_ratio == 1.0
