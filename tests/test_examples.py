"""Smoke tests: every shipped example must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)

# Each example replays a small experiment end to end — benchmark-
# adjacent work, skippable in a quick pass via -m "not slow".
pytestmark = pytest.mark.slow


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
