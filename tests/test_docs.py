"""The documentation layer must not rot.

Runs the same two checks the CI docs job runs via
``tools/check_docs.py``: the public API surface of ``repro.core`` and
``repro.serving`` is fully docstringed (the pydocstyle D100–D104
missing-docstring rules), and every relative link in ``docs/``,
``README.md`` and ``CHANGES.md`` points at a file that exists.
"""

import importlib.util
from pathlib import Path

_TOOL = (
    Path(__file__).resolve().parent.parent / "tools" / "check_docs.py"
)
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_public_api_is_docstringed():
    assert check_docs.check_docstrings() == []


def test_markdown_links_resolve():
    assert check_docs.check_markdown_links() == []


def test_tuning_guide_covers_every_engine_knob():
    """docs/TUNING.md names every EngineConfig and ServingConfig field."""
    import dataclasses

    from repro.core.config import EngineConfig, ServingConfig

    guide = (
        Path(__file__).resolve().parent.parent / "docs" / "TUNING.md"
    ).read_text(encoding="utf-8")
    for config in (EngineConfig, ServingConfig):
        for field in dataclasses.fields(config):
            assert f"`{field.name}`" in guide, (
                f"docs/TUNING.md does not document "
                f"{config.__name__}.{field.name}"
            )
