"""QueryService over a ClusterEngine: the duck-typed serving contract.

The serving layer never special-cases clusters — it drives ``pin()``
and the snapshot protocol.  These tests hold that contract: coalesced
quick batches share one fused merge, accurate requests scatter/gather,
every answer matches a serial replay against the same pinned state,
and admission control behaves exactly as over a single engine.
"""

import numpy as np
import pytest

from repro.cluster import ClusterEngine
from repro.core.config import EngineConfig, ServingConfig
from repro.serving import Overloaded, QueryService

PHIS = (0.1, 0.25, 0.5, 0.75, 0.9)


@pytest.fixture()
def cluster():
    config = EngineConfig(
        epsilon=0.02, block_elems=100, sketch_backend="kll"
    )
    engine = ClusterEngine(shards=4, config=config)
    rng = np.random.default_rng(77)
    for _ in range(3):
        engine.stream_update_many(
            rng.integers(0, 2**30, 5_000, dtype=np.int64)
        )
        engine.end_time_step()
    engine.flush()
    engine.stream_update_many(
        rng.integers(0, 2**30, 2_000, dtype=np.int64)
    )
    yield engine
    engine.close()


class TestServingOverCluster:
    def test_quick_and_accurate_serve(self, cluster):
        with QueryService(
            cluster, ServingConfig(quick_workers=2, accurate_workers=2)
        ) as service:
            quick = [service.submit(phi, mode="quick") for phi in PHIS]
            accurate = [
                service.submit(phi, mode="accurate") for phi in PHIS
            ]
            quick_results = [f.result(timeout=60) for f in quick]
            accurate_results = [f.result(timeout=60) for f in accurate]
            snapshot = service.metrics_snapshot()
        assert snapshot.served["quick"] == len(PHIS)
        assert snapshot.served["accurate"] == len(PHIS)
        # Serial replay against the quiescent cluster must agree.
        for phi, result in zip(PHIS, quick_results):
            assert (
                result.value == cluster.quantile(phi, mode="quick").value
            ), phi
        for phi, result in zip(PHIS, accurate_results):
            assert (
                result.value
                == cluster.quantile(phi, mode="accurate").value
            ), phi

    def test_coalescing_shares_fused_merges(self, cluster):
        with QueryService(
            cluster,
            ServingConfig(
                quick_workers=1, coalesce=True, coalesce_window_ms=20.0
            ),
        ) as service:
            requests = [
                service.submit(phi, mode="quick")
                for phi in list(PHIS) * 8
            ]
            for request in requests:
                request.result(timeout=60)
            snapshot = service.metrics_snapshot()
        assert snapshot.served["quick"] == len(PHIS) * 8
        # Batches formed, and fused TS merges stayed below one per
        # request — the coalescer's contract, now across four shards.
        assert snapshot.coalesced_batches >= 1
        assert snapshot.ts_merges < snapshot.served["quick"]

    def test_epoch_tuple_tracks_seals(self, cluster):
        with cluster.pin() as before:
            epoch_before = before.epoch
        cluster.stream_update_many(
            np.random.default_rng(5).integers(
                0, 2**30, 1_000, dtype=np.int64
            )
        )
        cluster.end_time_step()
        cluster.flush()
        with cluster.pin() as after:
            epoch_after = after.epoch
        assert isinstance(epoch_before, tuple)
        assert len(epoch_before) == 4
        assert epoch_after != epoch_before

    def test_admission_control_still_bounds_queue(self, cluster):
        config = ServingConfig(
            max_queue=4, accurate_queue=2, accurate_workers=1,
            quick_workers=1,
        )
        with QueryService(cluster, config) as service:
            service.pause()
            accepted = []
            rejected = 0
            for phi in np.linspace(0.05, 0.95, 12):
                try:
                    accepted.append(
                        service.submit(float(phi), mode="accurate")
                    )
                except Overloaded:
                    rejected += 1
            assert rejected > 0
            assert len(accepted) <= config.accurate_queue_bound
            service.resume()
            for request in accepted:
                request.result(timeout=60)

    def test_windowed_requests_over_cluster(self, cluster):
        window = cluster.available_window_sizes()[0]
        with QueryService(cluster) as service:
            result = service.quantile(
                0.5, mode="accurate", window_steps=window, timeout=60
            )
        assert result.window_steps == window
        assert (
            result.value
            == cluster.quantile(
                0.5, mode="accurate", window_steps=window
            ).value
        )
