"""ShardRouter: determinism, balance, order preservation, manifests."""

import numpy as np
import pytest

from repro.cluster import ShardRouter


class TestValidation:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardRouter(0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="roundrobin")

    def test_range_needs_matching_bounds(self):
        with pytest.raises(ValueError):
            ShardRouter(3, strategy="range", bounds=[10])
        with pytest.raises(ValueError):
            ShardRouter(3, strategy="range", bounds=[20, 10])
        with pytest.raises(ValueError):
            ShardRouter(2, strategy="hash", bounds=[10])


class TestHashRouting:
    def test_deterministic(self):
        router = ShardRouter(4)
        values = np.random.default_rng(1).integers(0, 2**40, 10_000)
        first = router.shard_indices(values)
        second = router.shard_indices(values)
        assert np.array_equal(first, second)
        for value in values[:50]:
            assert router.shard_of(int(value)) == first[
                int(np.flatnonzero(values == value)[0])
            ]

    def test_statistically_balanced(self):
        router = ShardRouter(4)
        values = np.random.default_rng(2).integers(0, 2**40, 40_000)
        counts = np.bincount(router.shard_indices(values), minlength=4)
        assert counts.min() > 0.8 * counts.max()

    def test_sequential_values_spread(self):
        # The splitmix finalizer must break up runs of consecutive ints
        # (timestamps, auto-increment ids).
        router = ShardRouter(8)
        counts = np.bincount(
            router.shard_indices(np.arange(8_000)), minlength=8
        )
        assert counts.min() > 0.7 * counts.max()

    def test_single_shard_short_circuit(self):
        router = ShardRouter(1)
        values = np.arange(100)
        assert np.array_equal(
            router.shard_indices(values), np.zeros(100, dtype=np.int64)
        )
        chunks = router.route_many(values)
        assert len(chunks) == 1
        assert np.array_equal(chunks[0], values)

    def test_negative_values_route(self):
        router = ShardRouter(4)
        indices = router.shard_indices(
            np.asarray([-1, -(2**40), 0, 5], dtype=np.int64)
        )
        assert np.all((indices >= 0) & (indices < 4))


class TestRangeRouting:
    def test_partitions_by_bounds(self):
        router = ShardRouter(3, strategy="range", bounds=[100, 200])
        values = np.asarray([-5, 50, 100, 150, 200, 250])
        assert router.shard_indices(values).tolist() == [0, 0, 0, 1, 1, 2]

    def test_route_many_preserves_order(self):
        router = ShardRouter(2, strategy="range", bounds=[10])
        values = np.asarray([5, 20, 3, 30, 7, 15])
        low, high = router.route_many(values)
        assert low.tolist() == [5, 3, 7]
        assert high.tolist() == [20, 30, 15]


class TestRouteMany:
    def test_fan_out_is_a_partition(self):
        router = ShardRouter(4)
        values = np.random.default_rng(3).integers(0, 2**32, 5_000)
        chunks = router.route_many(values)
        assert sum(chunk.size for chunk in chunks) == values.size
        assert np.array_equal(
            np.sort(np.concatenate(chunks)), np.sort(values)
        )
        indices = router.shard_indices(values)
        for shard, chunk in enumerate(chunks):
            assert np.array_equal(chunk, values[indices == shard])


class TestManifest:
    @pytest.mark.parametrize(
        "router",
        [
            ShardRouter(1),
            ShardRouter(8),
            ShardRouter(3, strategy="range", bounds=[1000, 2000]),
        ],
        ids=["one", "hash8", "range3"],
    )
    def test_round_trip(self, router):
        clone = ShardRouter.from_manifest(router.to_manifest())
        assert clone.shards == router.shards
        assert clone.strategy == router.strategy
        values = np.random.default_rng(4).integers(0, 2**30, 2_000)
        assert np.array_equal(
            clone.shard_indices(values), router.shard_indices(values)
        )

    def test_manifest_is_json_safe(self):
        import json

        manifest = ShardRouter(
            3, strategy="range", bounds=[10, 20]
        ).to_manifest()
        assert json.loads(json.dumps(manifest)) == manifest
