"""Partial scatter/gather: quorum, widened bounds, mid-query exclusion."""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ClusterUnavailable
from repro.core.config import EngineConfig
from repro.faults.plan import FaultPlan

PHIS = (0.1, 0.5, 0.9)


def make_config(**overrides):
    base = dict(epsilon=0.02, block_elems=100, sketch_backend="kll")
    base.update(overrides)
    return EngineConfig(**base)


def feed_cluster(cluster, seed=77, steps=3, size=4000):
    rng = np.random.default_rng(seed)
    fed = []
    for _ in range(steps):
        batch = rng.integers(0, 1_000_000, size=size).astype(np.int64)
        cluster.stream_update_many(batch)
        cluster.end_time_step()
        fed.append(batch)
    return np.sort(np.concatenate(fed))


def exact_rank_bracket(universe, value):
    lo = int(np.searchsorted(universe, value, side="left"))
    hi = int(np.searchsorted(universe, value, side="right"))
    return lo, hi


def test_strict_gather_raises_when_quarantined(tmp_path):
    cluster = ClusterEngine(
        shards=3, config=make_config(), wal_dir=tmp_path / "wal"
    )
    feed_cluster(cluster)
    cluster.kill_shard(1, "poisoned")
    with pytest.raises(ClusterUnavailable, match="strict"):
        cluster.quantile(0.5)
    cluster.close()


def test_quorum_must_hold(tmp_path):
    cluster = ClusterEngine(
        shards=2,
        config=make_config(min_gather_shards=2),
        wal_dir=tmp_path / "wal",
    )
    feed_cluster(cluster)
    cluster.kill_shard(0, "poisoned")
    with pytest.raises(ClusterUnavailable, match="quorum"):
        cluster.quantile(0.5)
    cluster.close()


@pytest.mark.parametrize("mode", ["quick", "accurate"])
def test_partial_answer_within_widened_bound(tmp_path, mode):
    cluster = ClusterEngine(
        shards=4,
        config=make_config(min_gather_shards=2),
        wal_dir=tmp_path / "wal",
    )
    universe = feed_cluster(cluster)
    total = len(universe)
    cluster.kill_shard(2, "poisoned")
    missing = cluster._shard_elems[2]
    for phi in PHIS:
        result = cluster.quantile(phi, mode=mode)
        partial = result.partial
        assert partial is not None
        assert partial.missing_shards == (2,)
        assert partial.missing_elements == missing
        assert partial.shards_answering == 3
        assert partial.shards_total == 4
        # The widening is exactly base + missing (Lemma in bounds.py).
        assert result.rank_error_bound == pytest.approx(
            partial.base_bound + missing
        )
        # Soundness against the FULL union, dead shard's data included:
        # the answer's exact full-union rank is within the widened
        # bound of the full-union target rank (+1 for rank rounding).
        target = max(1, int(np.ceil(phi * total)))
        lo, hi = exact_rank_bracket(universe, result.value)
        distance = max(lo + 1 - target, target - hi, 0)
        assert distance <= result.rank_error_bound + 1
    cluster.close()


def test_quantile_many_quick_reports_partial(tmp_path):
    cluster = ClusterEngine(
        shards=4,
        config=make_config(min_gather_shards=1),
        wal_dir=tmp_path / "wal",
    )
    feed_cluster(cluster)
    cluster.kill_shard(0, "poisoned")
    results = cluster.quantile_many(list(PHIS), mode="quick")
    assert all(r.partial is not None for r in results)
    assert all(r.partial.missing_shards == (0,) for r in results)
    cluster.close()


def test_midquery_fault_excludes_culprit_shard():
    """A disk fault during the gather drops exactly the faulty shard."""
    # Shard 1's every read is a persistent corruption fault; ingest
    # (writes) is untouched, and kappa is high enough that no merge
    # reads run before the query.
    plan = FaultPlan(seed=5, corrupt_rate=1.0, shard_scope=(1,))
    cluster = ClusterEngine(
        shards=3,
        config=make_config(min_gather_shards=2),
        fault_plan=plan,
    )
    feed_cluster(cluster, steps=2)
    result = cluster.quantile(0.5, mode="accurate")
    partial = result.partial
    assert partial is not None
    assert partial.missing_shards == (1,)
    assert partial.shards_answering == 2
    assert partial.shards_total == 3
    assert not result.degraded  # excluded and re-searched, not degraded
    assert result.rank_error_bound == pytest.approx(
        partial.base_bound + partial.missing_elements
    )
    cluster.close()


def test_midquery_fault_without_quorum_follows_legacy_path():
    """min_gather_shards=0 keeps PR-7 behavior: degrade or raise."""
    from repro.faults.errors import DiskFault

    plan = FaultPlan(seed=5, corrupt_rate=1.0, shard_scope=(1,))
    # Default config degrades to a quick answer over the full TS.
    cluster = ClusterEngine(
        shards=3, config=make_config(), fault_plan=plan
    )
    feed_cluster(cluster, steps=2)
    degraded = cluster.quantile(0.5, mode="accurate")
    assert degraded.degraded
    assert degraded.partial is None  # nothing excluded: full quick TS
    cluster.close()
    # With degradation off, the fault propagates as before.
    strict = ClusterEngine(
        shards=3,
        config=make_config(degrade_on_fault=False),
        fault_plan=plan,
    )
    feed_cluster(strict, steps=2)
    with pytest.raises(DiskFault):
        strict.quantile(0.5, mode="accurate")
    strict.close()


def test_full_gather_has_no_partial_metadata(tmp_path):
    cluster = ClusterEngine(
        shards=3,
        config=make_config(min_gather_shards=1),
        wal_dir=tmp_path / "wal",
    )
    feed_cluster(cluster)
    for mode in ("quick", "accurate"):
        assert cluster.quantile(0.5, mode=mode).partial is None
    for result in cluster.quantile_many(list(PHIS), mode="quick"):
        assert result.partial is None
    cluster.close()
