"""Chaos: kill a shard mid-ingest, recover, lose zero acked updates.

The cluster-level durability contract: every ``stream_update_many``
batch that returned (the ack) — including batches routed to a shard
*while it was quarantined* — survives kill/recover, and after the
supervisor rejoins the shard the cluster's answers are bit-identical
to a never-crashed cluster fed the same stream.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterEngine,
    ShardSupervisor,
    save_cluster,
)
from repro.core.config import EngineConfig
from repro.faults.retry import RetryPolicy
from repro.persistence.warehouse_store import PersistenceError

PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)


def make_config(**overrides):
    base = dict(
        epsilon=0.02,
        block_elems=100,
        sketch_backend="kll",
        min_gather_shards=2,
    )
    base.update(overrides)
    return EngineConfig(**base)


def make_feeds(seed, steps=4, size=4000):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 1_000_000, size=size).astype(np.int64)
        for _ in range(steps)
    ]


def run_reference(config, feeds):
    cluster = ClusterEngine(shards=4, config=config)
    for feed in feeds:
        cluster.stream_update_many(feed)
        cluster.end_time_step()
    answers = [cluster.quantile(phi).value for phi in PHIS]
    cluster.close()
    return answers


def test_kill_recover_is_bit_identical(tmp_path):
    config = make_config()
    feeds = make_feeds(seed=808)
    reference = run_reference(config, feeds)

    cluster = ClusterEngine(shards=4, config=config, wal_dir=tmp_path / "wal")
    cluster.stream_update_many(feeds[0])
    cluster.end_time_step()
    save_cluster(cluster, tmp_path / "ckpt")
    cluster.stream_update_many(feeds[1])
    cluster.end_time_step()
    cluster.kill_shard(2, "chaos kill")
    # Acked while quarantined: banked in the WAL, applied at recovery.
    cluster.stream_update_many(feeds[2])
    cluster.end_time_step()
    assert cluster.quarantined_shards == {2: "chaos kill"}

    supervisor = ShardSupervisor(
        cluster,
        tmp_path / "ckpt",
        retry=RetryPolicy(max_retries=3, backoff_seconds=0.05),
    )
    supervisor.run_until_settled()
    assert cluster.quarantined_shards == {}
    assert supervisor.attempts(2) == 0  # reset after success
    cluster.check_invariants()  # lockstep + acked-count invariants

    cluster.stream_update_many(feeds[3])
    cluster.end_time_step()
    assert [cluster.quantile(phi).value for phi in PHIS] == reference
    # Full gather again: no partial metadata on the answers.
    assert cluster.quantile(0.5).partial is None
    cluster.close()


def test_acked_while_quarantined_is_never_lost(tmp_path):
    config = make_config()
    cluster = ClusterEngine(shards=4, config=config, wal_dir=tmp_path / "wal")
    feed = make_feeds(seed=99, steps=1, size=8000)[0]
    cluster.stream_update_many(feed)
    cluster.end_time_step()
    save_cluster(cluster, tmp_path / "ckpt")
    cluster.kill_shard(1, "chaos")
    extra = make_feeds(seed=100, steps=1, size=4000)[0]
    cluster.stream_update_many(extra)  # part lands on the dead shard
    cluster.end_time_step()
    banked = cluster.n_acked - cluster.n_total
    assert banked > 0  # something really was WAL-only
    ShardSupervisor(cluster, tmp_path / "ckpt").run_until_settled()
    assert cluster.n_total == cluster.n_acked == len(feed) + len(extra)
    cluster.close()


def test_rejoin_refuses_stale_engine(tmp_path):
    """A restored engine that missed acks cannot rejoin."""
    from repro.core.engine import HybridQuantileEngine

    config = make_config()
    cluster = ClusterEngine(shards=2, config=config, wal_dir=tmp_path / "wal")
    cluster.stream_update_many(make_feeds(seed=1, steps=1)[0])
    cluster.end_time_step()
    cluster.kill_shard(0, "chaos")
    stale = HybridQuantileEngine(config=config)
    with pytest.raises(ValueError, match="sealed"):
        cluster.rejoin_shard(0, stale)
    stale.close()
    cluster.close()


def test_checkpoint_refused_while_quarantined(tmp_path):
    config = make_config()
    cluster = ClusterEngine(shards=2, config=config, wal_dir=tmp_path / "wal")
    cluster.stream_update_many(make_feeds(seed=2, steps=1)[0])
    cluster.end_time_step()
    cluster.kill_shard(1, "chaos")
    with pytest.raises(PersistenceError, match="quarantined"):
        save_cluster(cluster, tmp_path / "ckpt")
    cluster.close()


def test_quarantined_ingest_without_wal_is_refused():
    from repro.cluster import ClusterUnavailable

    config = make_config()
    cluster = ClusterEngine(shards=2, config=config)  # no wal_dir
    cluster.stream_update_many(make_feeds(seed=3, steps=1)[0])
    cluster.end_time_step()
    cluster.kill_shard(0, "chaos")
    with pytest.raises(ClusterUnavailable, match="no WAL"):
        cluster.stream_update_many(
            np.arange(100, dtype=np.int64)
        )
    cluster.close()
