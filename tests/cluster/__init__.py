"""Tests for the sharded cluster layer."""
