"""Cluster checkpoints: per-shard directories plus one manifest."""

import json

import numpy as np
import pytest

from repro.cluster import (
    ClusterEngine,
    list_shard_dirs,
    load_cluster,
    save_cluster,
)
from repro.core.config import EngineConfig
from repro.persistence import PersistenceError


def build_cluster(shards=3, backend="kll", seed=11, steps=3, batch=4_000):
    config = EngineConfig(
        epsilon=0.02, block_elems=100, sketch_backend=backend
    )
    cluster = ClusterEngine(shards=shards, config=config)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        cluster.stream_update_many(
            rng.integers(0, 2**30, batch, dtype=np.int64)
        )
        cluster.end_time_step()
    cluster.flush()
    # Live tail: the stream sketches must round-trip too.
    cluster.stream_update_many(
        rng.integers(0, 2**30, batch // 2, dtype=np.int64)
    )
    return cluster


class TestRoundTrip:
    @pytest.mark.parametrize("backend", ["gk", "kll"])
    def test_answers_survive(self, tmp_path, backend):
        cluster = build_cluster(backend=backend)
        before = {
            (phi, mode): cluster.quantile(phi, mode=mode).value
            for phi in (0.1, 0.5, 0.9)
            for mode in ("quick", "accurate")
        }
        save_cluster(cluster, tmp_path / "cluster")
        restored = load_cluster(tmp_path / "cluster")
        try:
            assert restored.num_shards == cluster.num_shards
            assert restored.steps_sealed == cluster.steps_sealed
            assert restored.n_historical == cluster.n_historical
            assert restored.m_stream == cluster.m_stream
            assert (
                restored.config.sketch_backend
                == cluster.config.sketch_backend
            )
            after = {
                (phi, mode): restored.quantile(phi, mode=mode).value
                for phi in (0.1, 0.5, 0.9)
                for mode in ("quick", "accurate")
            }
            assert after == before
        finally:
            cluster.close()
            restored.close()

    def test_layout_and_manifest(self, tmp_path):
        cluster = build_cluster(shards=3)
        try:
            root = save_cluster(cluster, tmp_path / "cluster")
            dirs = list_shard_dirs(root)
            assert [d.name for d in dirs] == [
                "shard-00", "shard-01", "shard-02",
            ]
            assert all(d.is_dir() for d in dirs)
            manifest = json.loads((root / "cluster.json").read_text())
            assert manifest["format"] == "repro-cluster-v1"
            assert manifest["shards"] == 3
            assert manifest["router"]["strategy"] == "hash"
            assert manifest["step"] == cluster.steps_sealed
            assert manifest["config"]["sketch_backend"] == "kll"
        finally:
            cluster.close()

    def test_restored_ingest_continues_routing(self, tmp_path):
        cluster = build_cluster(shards=2, seed=21)
        save_cluster(cluster, tmp_path / "cluster")
        restored = load_cluster(tmp_path / "cluster")
        try:
            tail = np.random.default_rng(22).integers(
                0, 2**30, 4_000, dtype=np.int64
            )
            cluster.stream_update_many(tail)
            restored.stream_update_many(tail)
            cluster.end_time_step()
            restored.end_time_step()
            cluster.flush()
            restored.flush()
            restored.check_invariants()
            per_shard_before = [s.n_total for s in cluster.shards]
            per_shard_after = [s.n_total for s in restored.shards]
            assert per_shard_before == per_shard_after
            for phi in (0.25, 0.75):
                assert (
                    cluster.quantile(phi, mode="accurate").value
                    == restored.quantile(phi, mode="accurate").value
                ), phi
        finally:
            cluster.close()
            restored.close()


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(PersistenceError):
            load_cluster(tmp_path / "empty")

    def test_unknown_format(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "cluster.json").write_text(
            json.dumps({"format": "not-a-cluster", "shards": 1})
        )
        with pytest.raises(PersistenceError):
            load_cluster(root)

    def test_missing_shard_dir(self, tmp_path):
        cluster = build_cluster(shards=2, steps=2, batch=1_000)
        try:
            root = save_cluster(cluster, tmp_path / "cluster")
        finally:
            cluster.close()
        import shutil

        shutil.rmtree(root / "shard-01")
        with pytest.raises(PersistenceError):
            load_cluster(root)

    def test_save_is_repeatable(self, tmp_path):
        cluster = build_cluster(shards=2, steps=2, batch=1_000)
        try:
            save_cluster(cluster, tmp_path / "cluster")
            save_cluster(cluster, tmp_path / "cluster")  # overwrite OK
            restored = load_cluster(tmp_path / "cluster")
            restored.close()
        finally:
            cluster.close()
