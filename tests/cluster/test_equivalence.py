"""Cluster equivalence: the tentpole's correctness harness.

Three regimes:

* ``shards=1`` — the cluster must be *bit-identical* to a plain engine
  fed the same stream: same values, same disk accesses, same
  iterations, quick and accurate, scalar and batched ingest.  The
  single-shard cluster runs the literal single-engine code over the
  same inputs, so any divergence is a routing or fusion bug.
* ``shards=4`` vs standalone replay — each shard's feed is recorded;
  standalone engines replay those per-shard feeds and a
  ``ClusterSnapshot`` built over the replay engines' pins must answer
  accurate queries *bit-identically* to the cluster's own snapshot
  (the gather math is shared code over identical pinned state).
* ``shards=4`` vs exact ground truth — quick answers stay within the
  fused summary's documented bound, accurate answers within the
  single-engine accurate bound, under both sketch backends.
"""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ShardRouter
from repro.cluster.engine import ClusterSnapshot
from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine

PHIS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def config_for(backend):
    return EngineConfig(
        epsilon=0.02, block_elems=100, sketch_backend=backend
    )


def feed(target, data, steps, batched=True):
    chunks = np.array_split(data, steps)
    for chunk in chunks:
        if batched:
            target.stream_update_many(chunk)
        else:
            for value in chunk.tolist():
                target.stream_update(value)
        target.end_time_step()
    target.flush()


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(404).integers(
        0, 2**32, size=24_000, dtype=np.int64
    )


class TestSingleShardBitIdentity:
    @pytest.mark.parametrize("backend", ["gk", "kll"])
    def test_matches_plain_engine(self, dataset, backend):
        engine = HybridQuantileEngine(config=config_for(backend))
        cluster = ClusterEngine(shards=1, config=config_for(backend))
        feed(engine, dataset, steps=5)
        feed(cluster, dataset, steps=5)
        try:
            for mode in ("quick", "accurate"):
                for phi in PHIS:
                    theirs = engine.quantile(phi, mode=mode)
                    ours = cluster.quantile(phi, mode=mode)
                    key = (mode, phi)
                    assert ours.value == theirs.value, key
                    assert ours.target_rank == theirs.target_rank, key
                    assert (
                        ours.disk_accesses == theirs.disk_accesses
                    ), key
                    assert ours.iterations == theirs.iterations, key
        finally:
            engine.close()
            cluster.close()

    def test_scalar_and_batched_ingest_agree(self, dataset):
        data = dataset[:8_000]
        batched = ClusterEngine(shards=1, config=config_for("kll"))
        scalar = ClusterEngine(shards=1, config=config_for("kll"))
        feed(batched, data, steps=4, batched=True)
        feed(scalar, data, steps=4, batched=False)
        try:
            for phi in (0.1, 0.5, 0.9):
                assert (
                    batched.quantile(phi, mode="accurate").value
                    == scalar.quantile(phi, mode="accurate").value
                ), phi
        finally:
            batched.close()
            scalar.close()


class TestScatterGatherReplay:
    @pytest.mark.parametrize("backend", ["gk", "kll"])
    def test_accurate_matches_standalone_replay(self, dataset, backend):
        shards = 4
        steps = 5
        config = config_for(backend)
        cluster = ClusterEngine(shards=shards, config=config)
        # Record each shard's per-step feed while driving the cluster.
        router = cluster.router
        feeds = [[] for _ in range(shards)]
        for chunk in np.array_split(dataset, steps):
            for shard, part in enumerate(router.route_many(chunk)):
                feeds[shard].append(part)
            cluster.stream_update_many(chunk)
            cluster.end_time_step()
        cluster.flush()

        # Standalone engines replay the recorded per-shard feeds.
        replicas = [
            HybridQuantileEngine(config=config) for _ in range(shards)
        ]
        for replica, shard_feed in zip(replicas, feeds):
            for part in shard_feed:
                if part.size:
                    replica.stream_update_many(part)
                replica.end_time_step()
            replica.flush()

        try:
            with cluster.pin() as ours:
                handles = [replica.pin() for replica in replicas]
                theirs = ClusterSnapshot(
                    handles, config, cluster._executor
                )
                try:
                    for phi in PHIS:
                        mine = ours.quantile(phi, mode="accurate")
                        replay = theirs.quantile(phi, mode="accurate")
                        assert mine.value == replay.value, phi
                        assert (
                            mine.target_rank == replay.target_rank
                        ), phi
                        assert (
                            mine.disk_accesses == replay.disk_accesses
                        ), phi
                finally:
                    theirs.release()
        finally:
            cluster.close()
            for replica in replicas:
                replica.close()


class TestAccuracyAgainstGroundTruth:
    @pytest.mark.parametrize("backend", ["gk", "kll"])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_both_modes_within_bounds(self, dataset, backend, shards):
        cluster = ClusterEngine(shards=shards, config=config_for(backend))
        feed(cluster, dataset, steps=5)
        srt = np.sort(dataset)
        try:
            # Leave a live tail so the stream term is exercised too.
            tail = np.random.default_rng(9).integers(
                0, 2**32, 3_000, dtype=np.int64
            )
            cluster.stream_update_many(tail)
            full = np.sort(np.concatenate([srt, tail]))
            for mode in ("quick", "accurate"):
                for phi in PHIS:
                    result = cluster.quantile(phi, mode=mode)
                    lo = (
                        int(
                            np.searchsorted(
                                full, result.value, side="left"
                            )
                        )
                        + 1
                    )
                    hi = int(
                        np.searchsorted(full, result.value, side="right")
                    )
                    rank = result.target_rank
                    error = (
                        0
                        if lo <= rank <= hi
                        else min(abs(rank - lo), abs(rank - hi))
                    )
                    assert error <= result.rank_error_bound + 1, (
                        mode, phi, error, result.rank_error_bound,
                    )
        finally:
            cluster.close()

    def test_quantile_many_quick_matches_singles(self, dataset):
        cluster = ClusterEngine(shards=4, config=config_for("kll"))
        feed(cluster, dataset, steps=4)
        try:
            with cluster.pin() as snapshot:
                batch = snapshot.quantile_many(PHIS, mode="quick")
                merges = snapshot.ts_merges_built
                singles = [
                    snapshot.query_rank(r.target_rank, mode="quick")
                    for r in batch
                ]
                assert [r.value for r in batch] == [
                    r.value for r in singles
                ]
                # The batch shared one fused merge across all phis.
                assert merges == 1
        finally:
            cluster.close()


class TestClusterBehaviors:
    def test_lockstep_and_invariants(self, dataset):
        cluster = ClusterEngine(shards=3, config=config_for("kll"))
        feed(cluster, dataset[:9_000], steps=3)
        try:
            cluster.check_invariants()
            assert cluster.steps_sealed == 3
            assert cluster.n_total == 9_000
            assert len(cluster.shard_reports()) == 3
            assert all(
                report["steps_sealed"] == 3
                for report in cluster.shard_reports()
            )
            sims = cluster.per_shard_sim_seconds()
            assert len(sims) == 3 and all(s > 0 for s in sims)
        finally:
            cluster.close()

    def test_router_shard_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClusterEngine(
                shards=4, config=config_for("gk"), router=ShardRouter(2)
            )

    def test_empty_cluster_query_raises(self):
        cluster = ClusterEngine(shards=2, config=config_for("gk"))
        try:
            with pytest.raises(ValueError):
                cluster.quantile(0.5)
        finally:
            cluster.close()

    def test_windowed_queries_gather(self, dataset):
        cluster = ClusterEngine(shards=2, config=config_for("gk"))
        feed(cluster, dataset[:16_000], steps=4)
        try:
            windows = cluster.available_window_sizes()
            assert windows
            window = windows[0]
            result = cluster.quantile(
                0.5, mode="accurate", window_steps=window
            )
            assert result.window_steps == window
            assert result.total_size < cluster.n_total
        finally:
            cluster.close()
