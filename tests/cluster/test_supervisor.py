"""Supervisor state machine: probe, backoff schedule, budget, rejoin."""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ShardSupervisor, save_cluster
from repro.cluster.supervisor import (
    FAILED,
    QUARANTINED,
    RESTORE_ATTEMPT,
    RESTORED,
    RETRY_SCHEDULED,
)
from repro.core.config import EngineConfig
from repro.faults.retry import RetryPolicy


def make_cluster(tmp_path, shards=3):
    config = EngineConfig(
        epsilon=0.02,
        block_elems=100,
        sketch_backend="kll",
        min_gather_shards=1,
    )
    cluster = ClusterEngine(
        shards=shards, config=config, wal_dir=tmp_path / "wal"
    )
    rng = np.random.default_rng(55)
    for _ in range(2):
        cluster.stream_update_many(
            rng.integers(0, 100_000, size=3000).astype(np.int64)
        )
        cluster.end_time_step()
    save_cluster(cluster, tmp_path / "ckpt")
    return cluster


def test_restore_on_first_due_tick(tmp_path):
    cluster = make_cluster(tmp_path)
    cluster.kill_shard(1, "chaos")
    supervisor = ShardSupervisor(cluster, tmp_path / "ckpt")
    events = supervisor.tick(now=0.0)
    assert [e.action for e in events] == [RESTORE_ATTEMPT, RESTORED]
    assert cluster.quarantined_shards == {}
    cluster.check_invariants()
    cluster.close()


def test_health_probe_quarantines_and_recovers(tmp_path):
    cluster = make_cluster(tmp_path)
    sick = {2}

    def probe(index, engine):
        if index in sick:
            sick.discard(index)  # heal after one report
            return "probe says poisoned"
        return None

    supervisor = ShardSupervisor(
        cluster, tmp_path / "ckpt", health_check=probe
    )
    events = supervisor.tick(now=0.0)
    actions = [e.action for e in events]
    assert actions == [QUARANTINED, RESTORE_ATTEMPT, RESTORED]
    assert events[0].shard == 2
    assert events[0].detail == "probe says poisoned"
    cluster.close()


def test_backoff_schedule_is_deterministic(tmp_path):
    cluster = make_cluster(tmp_path)
    cluster.kill_shard(0, "chaos")
    retry = RetryPolicy(
        max_retries=2, backoff_seconds=0.5, backoff_cap_seconds=8.0,
        jitter=0.5, seed=42,
    )
    # Point at a directory with no checkpoint: every restore fails.
    supervisor = ShardSupervisor(cluster, tmp_path / "nowhere", retry=retry)
    supervisor.tick(now=0.0)
    assert supervisor.attempts(0) == 1
    first_delay = retry.sleep_before(1)
    # Before the backoff elapses: no new attempt.
    supervisor.tick(now=first_delay / 2)
    assert supervisor.attempts(0) == 1
    # At the deterministic due time: attempt 2.
    supervisor.tick(now=first_delay)
    assert supervisor.attempts(0) == 2
    # Exhaust the budget: attempt 3 (> max_retries=2) marks FAILED.
    supervisor.tick(now=first_delay + retry.sleep_before(2))
    assert supervisor.attempts(0) == 3
    assert 0 in supervisor.failed_shards
    assert supervisor.pending_shards == []
    actions = [e.action for e in supervisor.events]
    assert actions == [
        RESTORE_ATTEMPT, RETRY_SCHEDULED,
        RESTORE_ATTEMPT, RETRY_SCHEDULED,
        RESTORE_ATTEMPT, FAILED,
    ]
    # The slot stays durably writable between (and after) attempts.
    cluster.stream_update_many(np.arange(300, dtype=np.int64))
    cluster.close()


def test_failed_restore_reopens_wal(tmp_path):
    cluster = make_cluster(tmp_path)
    cluster.kill_shard(1, "chaos")
    acked_before = cluster.n_acked
    supervisor = ShardSupervisor(
        cluster,
        tmp_path / "nowhere",
        retry=RetryPolicy(max_retries=0),
    )
    supervisor.tick(now=0.0)
    assert 1 in supervisor.failed_shards
    # WAL-only ingest still acks durably after the failed restore...
    cluster.stream_update_many(np.arange(500, dtype=np.int64))
    assert cluster.n_acked > acked_before
    # ...and a supervisor pointed at the REAL checkpoint recovers it,
    # banked post-failure acks included.
    rescue = ShardSupervisor(cluster, tmp_path / "ckpt")
    rescue.tick(now=0.0)
    assert cluster.quarantined_shards == {}
    assert cluster.n_total == cluster.n_acked
    cluster.close()


def test_run_until_settled_budget(tmp_path):
    cluster = make_cluster(tmp_path)
    cluster.kill_shard(0, "chaos")
    supervisor = ShardSupervisor(
        cluster,
        tmp_path / "nowhere",
        retry=RetryPolicy(max_retries=1000, backoff_seconds=0.001),
    )
    with pytest.raises(RuntimeError, match="still pending"):
        supervisor.run_until_settled(max_ticks=5)
    cluster.close()


def test_event_transcript_dump(tmp_path):
    import json

    cluster = make_cluster(tmp_path)
    cluster.kill_shard(2, "chaos")
    supervisor = ShardSupervisor(cluster, tmp_path / "ckpt")
    supervisor.tick(now=1.5)
    path = supervisor.dump_events(tmp_path / "artifacts" / "recovery.json")
    doc = json.loads(path.read_text())
    assert [entry["action"] for entry in doc] == [
        RESTORE_ATTEMPT, RESTORED,
    ]
    assert all(entry["shard"] == 2 for entry in doc)
    assert all(entry["time"] == 1.5 for entry in doc)
    cluster.close()
