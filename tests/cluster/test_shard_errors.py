"""close()/flush() must visit every shard and aggregate all failures."""

import numpy as np
import pytest

from repro.cluster import ClusterEngine, ShardErrors
from repro.core.config import EngineConfig


def make_cluster(shards=4):
    config = EngineConfig(epsilon=0.02, block_elems=100)
    cluster = ClusterEngine(shards=shards, config=config)
    cluster.stream_update_many(
        np.random.default_rng(7).integers(
            0, 10_000, size=2000
        ).astype(np.int64)
    )
    return cluster


def poison(engine, method, message):
    def boom(*args, **kwargs):
        raise RuntimeError(message)

    setattr(engine, method, boom)


def spy_close(engine, log, tag):
    real = engine.close

    def wrapped():
        log.append(tag)
        real()

    engine.close = wrapped


def test_close_aggregates_two_poisoned_shards():
    cluster = make_cluster()
    closed = []
    spy_close(cluster.shards[0], closed, 0)
    spy_close(cluster.shards[2], closed, 2)
    poison(cluster.shards[1], "close", "disk 1 detached")
    poison(cluster.shards[3], "close", "disk 3 detached")
    with pytest.raises(ShardErrors) as info:
        cluster.close()
    err = info.value
    assert err.operation == "close"
    assert sorted(err.errors) == [1, 3]
    assert "disk 1 detached" in str(err)
    assert "disk 3 detached" in str(err)
    # The healthy shards were still closed, not skipped.
    assert closed == [0, 2]


def test_flush_aggregates_two_poisoned_shards():
    cluster = make_cluster()
    poison(cluster.shards[0], "flush", "shard 0 wedged")
    poison(cluster.shards[2], "flush", "shard 2 wedged")
    with pytest.raises(ShardErrors) as info:
        cluster.flush()
    err = info.value
    assert err.operation == "flush"
    assert sorted(err.errors) == [0, 2]
    cluster.shards[0].flush = lambda: []  # unwedge for teardown
    cluster.shards[2].flush = lambda: []
    cluster.close()


def test_single_failure_reraises_original():
    cluster = make_cluster()
    poison(cluster.shards[2], "close", "only one bad shard")
    with pytest.raises(RuntimeError, match="only one bad shard") as info:
        cluster.close()
    assert not isinstance(info.value, ShardErrors)


def test_clean_close_is_quiet():
    cluster = make_cluster()
    closed = []
    for index, shard in enumerate(cluster.shards):
        spy_close(shard, closed, index)
    cluster.flush()
    cluster.close()
    assert closed == [0, 1, 2, 3]
