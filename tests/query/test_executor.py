"""Unit tests for the query executor itself."""

from __future__ import annotations

import threading

import pytest

from repro.query import QueryExecutor


class _Task:
    """Records which thread ran it and returns a canned result."""

    def __init__(self, result):
        self.result = result
        self.thread = None

    def run(self, cache):
        self.thread = threading.current_thread()
        if isinstance(self.result, Exception):
            raise self.result
        return self.result


class TestSerialExecutor:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            QueryExecutor(workers=0)

    def test_runs_inline_without_pool(self):
        executor = QueryExecutor(workers=1)
        tasks = [_Task(i) for i in range(5)]
        assert executor.run_tasks(tasks, None) == [0, 1, 2, 3, 4]
        assert not executor.pool_started
        main = threading.current_thread()
        assert all(task.thread is main for task in tasks)

    def test_single_task_stays_inline_even_with_workers(self):
        executor = QueryExecutor(workers=4)
        task = _Task("only")
        assert executor.run_tasks([task], None) == ["only"]
        assert not executor.pool_started
        executor.close()


class TestParallelExecutor:
    def test_preserves_task_order(self):
        with QueryExecutor(workers=4) as executor:
            tasks = [_Task(i * i) for i in range(20)]
            assert executor.run_tasks(tasks, None) == [
                i * i for i in range(20)
            ]
            assert executor.pool_started

    def test_runs_on_named_worker_threads(self):
        with QueryExecutor(workers=2) as executor:
            tasks = [_Task(i) for i in range(8)]
            executor.run_tasks(tasks, None)
        names = {task.thread.name for task in tasks}
        assert all(name.startswith("repro-query") for name in names)

    def test_worker_exception_propagates(self):
        with QueryExecutor(workers=2) as executor:
            tasks = [_Task(1), _Task(RuntimeError("boom")), _Task(3)]
            with pytest.raises(RuntimeError, match="boom"):
                executor.run_tasks(tasks, None)

    def test_close_is_idempotent_and_falls_back_inline(self):
        executor = QueryExecutor(workers=4)
        executor.run_tasks([_Task(1), _Task(2)], None)
        executor.close()
        executor.close()
        # Closed executors still answer, inline.
        tasks = [_Task(10), _Task(20)]
        assert executor.run_tasks(tasks, None) == [10, 20]
        assert not executor.pool_started
        main = threading.current_thread()
        assert all(task.thread is main for task in tasks)
