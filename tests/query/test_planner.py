"""Unit tests for the query planner's per-partition task generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import QueryPlanner
from repro.storage.cache import BlockCache

from ..conftest import fill_engine


@pytest.fixture
def loaded_engine(small_engine, rng):
    fill_engine(small_engine, rng, steps=7, batch=600, live=400)
    return small_engine


class TestRankProbes:
    def test_one_task_per_nonempty_partition(self, loaded_engine):
        partitions = loaded_engine.store.partitions()
        planner = QueryPlanner(partitions)
        tasks = planner.rank_probes(500_000)
        assert len(tasks) == sum(1 for p in partitions if len(p) > 0)
        assert [t.partition for t in tasks] == [
            p for p in partitions if len(p) > 0
        ]

    def test_bounds_come_from_the_summary(self, loaded_engine):
        partitions = loaded_engine.store.partitions()
        planner = QueryPlanner(partitions)
        value = 123_456
        for task in planner.rank_probes(value):
            lo, hi = task.partition.summary.search_bounds(value)
            assert (task.lo, task.hi) == (lo, hi)
            assert task.value == value

    def test_task_run_matches_direct_rank_of(self, loaded_engine):
        partitions = loaded_engine.store.partitions()
        planner = QueryPlanner(partitions)
        disk = loaded_engine.disk
        for value in (0, 250_000, 999_999):
            for task in planner.rank_probes(value):
                cache = BlockCache(disk)
                got = task.run(cache)
                assert got == task.partition.run.in_memory_rank(value)

    def test_empty_partitions_are_dropped(self, loaded_engine):
        partitions = loaded_engine.store.partitions()
        planner = QueryPlanner(partitions)
        assert all(len(p) > 0 for p in planner.partitions)


class TestRangeReads:
    def test_range_read_returns_open_closed_interval(self, loaded_engine):
        partitions = [
            p for p in loaded_engine.store.partitions() if len(p) > 0
        ]
        planner = QueryPlanner(partitions)
        u, v = 200_000, 300_000
        cache = BlockCache(loaded_engine.disk)
        chunks = [task.run(cache) for task in planner.residual_reads(u, v)]
        got = np.sort(np.concatenate(chunks))
        expected = np.sort(
            np.concatenate(
                [
                    p.run.values[(p.run.values > u) & (p.run.values <= v)]
                    for p in partitions
                ]
            )
        )
        assert np.array_equal(got, expected)

    def test_empty_interval_reads_nothing(self, loaded_engine):
        partitions = loaded_engine.store.partitions()
        planner = QueryPlanner(partitions)
        cache = BlockCache(loaded_engine.disk)
        for task in planner.residual_reads(500, 500):
            assert task.run(cache).size == 0
