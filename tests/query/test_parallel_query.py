"""End-to-end guarantees of the parallel accurate-query path.

The issue's contract, verbatim:

(a) serial and parallel answers are identical for the same seed;
(b) I/O counters under concurrency sum to the serial counts;
(c) ``query_workers=1`` exactly matches the pre-executor code path
    (inline execution, no thread pool ever started).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import EngineConfig, HybridQuantileEngine

from ..conftest import fill_engine

PHIS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def build_engine(query_workers: int, **overrides) -> HybridQuantileEngine:
    config = EngineConfig(
        epsilon=0.05,
        kappa=3,
        block_elems=16,
        query_workers=query_workers,
        **overrides,
    )
    engine = HybridQuantileEngine(config=config)
    rng = np.random.default_rng(2026)
    fill_engine(engine, rng, steps=9, batch=900, live=700)
    return engine


def result_fingerprint(result):
    """Everything about a QueryResult except timing and worker count."""
    return (
        result.value,
        result.target_rank,
        result.total_size,
        result.estimated_rank,
        result.disk_accesses,
        result.iterations,
        result.truncated,
    )


class TestSerialParallelEquivalence:
    """(a): answers are bit-identical for any worker count."""

    @pytest.mark.parametrize("workers", [2, 4, 8])
    def test_quantiles_identical(self, workers):
        with build_engine(1) as serial, build_engine(workers) as parallel:
            for phi in PHIS:
                lhs = serial.quantile(phi)
                rhs = parallel.quantile(phi)
                assert result_fingerprint(lhs) == result_fingerprint(rhs)
                assert rhs.query_workers == workers

    def test_windowed_and_batched_queries_identical(self):
        with build_engine(1) as serial, build_engine(4) as parallel:
            window = serial.available_window_sizes()[0]
            for engine_pair in ((serial, parallel),):
                lhs, rhs = engine_pair
                assert result_fingerprint(
                    lhs.quantile(0.5, window_steps=window)
                ) == result_fingerprint(
                    rhs.quantile(0.5, window_steps=window)
                )
            lhs_batch = serial.quantiles([0.25, 0.5, 0.75])
            rhs_batch = parallel.quantiles([0.25, 0.5, 0.75])
            assert [result_fingerprint(r) for r in lhs_batch] == [
                result_fingerprint(r) for r in rhs_batch
            ]

    def test_fetch_strategy_identical(self):
        with build_engine(1, query_strategy="fetch") as serial, \
                build_engine(4, query_strategy="fetch") as parallel:
            for phi in PHIS:
                assert result_fingerprint(serial.quantile(phi)) == \
                    result_fingerprint(parallel.quantile(phi))

    def test_parallel_sim_never_exceeds_serial_sim(self):
        with build_engine(4) as engine:
            for phi in PHIS:
                result = engine.quantile(phi)
                assert result.parallel_sim_seconds <= (
                    result.sim_seconds + 1e-12
                )


class TestIoAccountingUnderConcurrency:
    """(b): concurrent probes charge exactly the serial I/O."""

    def test_counters_sum_to_serial_counts(self):
        with build_engine(1) as serial, build_engine(6) as parallel:
            for phi in PHIS:
                serial.quantile(phi)
                parallel.quantile(phi)
            lhs = serial.disk.stats.counters.snapshot()
            rhs = parallel.disk.stats.counters.snapshot()
            assert lhs.sequential_reads == rhs.sequential_reads
            assert lhs.sequential_writes == rhs.sequential_writes
            assert lhs.random_reads == rhs.random_reads
            assert (
                serial.disk.stats.query.random_reads
                == parallel.disk.stats.query.random_reads
            )

    def test_many_threads_driving_one_engine(self):
        """Atomic counters survive user-level concurrency too."""
        with build_engine(1) as oracle:
            expected = {phi: oracle.quantile(phi).value for phi in PHIS}
            expected_io = oracle.disk.stats.query.random_reads

        with build_engine(3) as engine:
            errors = []

            def worker(phi):
                try:
                    for _ in range(3):
                        result = engine.quantile(phi)
                        assert result.value == expected[phi], phi
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(phi,)) for phi in PHIS
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            # Each query charges the same blocks regardless of
            # interleaving, so the grand total is exactly 3x the
            # one-pass-per-phi serial total.
            assert engine.disk.stats.query.random_reads == 3 * expected_io


class TestSerialPathUnchanged:
    """(c): the default configuration never touches a thread."""

    def test_default_config_is_serial(self):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        assert engine.config.query_workers == 1
        assert not engine.query_executor.parallel

    def test_serial_engine_never_starts_a_pool(self):
        with build_engine(1) as engine:
            for phi in PHIS:
                engine.quantile(phi)
            engine.quantiles([0.25, 0.75])
            assert not engine.query_executor.pool_started

    def test_explicit_workers_1_matches_default(self):
        explicit = build_engine(1)
        default_engine = HybridQuantileEngine(
            config=EngineConfig(epsilon=0.05, kappa=3, block_elems=16)
        )
        fill_engine(
            default_engine, np.random.default_rng(2026),
            steps=9, batch=900, live=700,
        )
        for phi in PHIS:
            assert result_fingerprint(explicit.quantile(phi)) == \
                result_fingerprint(default_engine.quantile(phi))


class TestRuntimeResizing:
    def test_set_query_workers_round_trip(self):
        with build_engine(1) as engine:
            baseline = [result_fingerprint(engine.quantile(p)) for p in PHIS]
            engine.set_query_workers(4)
            assert engine.config.query_workers == 4
            assert [
                result_fingerprint(engine.quantile(p)) for p in PHIS
            ] == baseline
            engine.set_query_workers(1)
            assert not engine.query_executor.parallel
            assert [
                result_fingerprint(engine.quantile(p)) for p in PHIS
            ] == baseline

    def test_set_query_workers_rejects_zero(self):
        with build_engine(1) as engine:
            with pytest.raises(ValueError):
                engine.set_query_workers(0)

    def test_config_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.05, query_workers=0)
