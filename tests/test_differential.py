"""Differential testing: the engine versus the exact oracle.

Hypothesis drives randomized *scenarios* — interleaved batches,
mid-step queries, window queries, skewed and duplicate-heavy value
distributions — and every answer is checked against the oracle within
the engine's guarantee.  This is the widest net in the suite: any
interaction bug between the sketch, the summaries, the bounds, and the
search shows up as a guarantee violation here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExactQuantiles, HybridQuantileEngine

# Randomized whole-scenario replays: benchmark-adjacent, skippable in
# a quick pass via -m "not slow".
pytestmark = pytest.mark.slow


def interval_error(oracle, value, target):
    high = oracle.rank(value)
    low = oracle.rank_strict(value) + 1
    return max(0, low - target, target - high)


def distribution(rng, kind, size):
    if kind == "uniform":
        return rng.integers(0, 10**6, size)
    if kind == "normal":
        return np.maximum(
            rng.normal(5e5, 5e4, size).astype(np.int64), 0
        )
    if kind == "zipf":
        return np.minimum(rng.zipf(1.4, size), 10**6).astype(np.int64)
    if kind == "few_values":
        return rng.integers(0, 8, size)
    if kind == "sorted":
        return np.sort(rng.integers(0, 10**6, size))
    raise AssertionError(kind)


scenario = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10**6),
        "kind": st.sampled_from(
            ["uniform", "normal", "zipf", "few_values", "sorted"]
        ),
        "steps": st.integers(0, 6),
        "batch": st.integers(50, 800),
        "live": st.integers(1, 800),
        "kappa": st.sampled_from([2, 3, 5]),
        "phi": st.floats(0.01, 1.0),
        "mid_step_query": st.booleans(),
    }
)


class TestDifferential:
    @given(config=scenario)
    @settings(max_examples=40, deadline=None)
    def test_accurate_matches_oracle(self, config):
        epsilon = 0.1
        rng = np.random.default_rng(config["seed"])
        engine = HybridQuantileEngine(
            epsilon=epsilon, kappa=config["kappa"], block_elems=8
        )
        oracle = ExactQuantiles()
        for _ in range(config["steps"]):
            data = distribution(rng, config["kind"], config["batch"])
            engine.stream_update_batch(data)
            oracle.update_batch(data)
            if config["mid_step_query"]:
                result = engine.quantile(config["phi"])
                err = interval_error(oracle, result.value, result.target_rank)
                assert err <= 1.5 * epsilon * engine.m_stream + 2
            engine.end_time_step()
        live = distribution(rng, config["kind"], config["live"])
        engine.stream_update_batch(live)
        oracle.update_batch(live)

        result = engine.quantile(config["phi"])
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 1.5 * epsilon * engine.m_stream + 2

        quick = engine.quantile(config["phi"], mode="quick")
        err = interval_error(oracle, quick.value, quick.target_rank)
        assert err <= 2 * epsilon * engine.n_total + 2

        engine.check_invariants()

    @given(config=scenario)
    @settings(max_examples=15, deadline=None)
    def test_window_queries_match_scoped_oracle(self, config):
        epsilon = 0.1
        rng = np.random.default_rng(config["seed"])
        engine = HybridQuantileEngine(
            epsilon=epsilon, kappa=config["kappa"], block_elems=8
        )
        step_batches = []
        for _ in range(config["steps"]):
            data = distribution(rng, config["kind"], config["batch"])
            step_batches.append(data)
            engine.stream_update_batch(data)
            engine.end_time_step()
        live = distribution(rng, config["kind"], config["live"])
        engine.stream_update_batch(live)

        for window in engine.available_window_sizes():
            oracle = ExactQuantiles()
            for data in step_batches[len(step_batches) - window:]:
                oracle.update_batch(data)
            oracle.update_batch(live)
            result = engine.quantile(config["phi"], window_steps=window)
            assert result.total_size == oracle.n
            err = interval_error(oracle, result.value, result.target_rank)
            assert err <= 1.5 * epsilon * engine.m_stream + 2
