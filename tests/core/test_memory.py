"""Tests for the memory budget model."""

import pytest

from repro.core import MemoryBudget, epsilon_for_budget
from repro.core.memory import (
    WORDS_PER_MB,
    epsilon1_for_historical_words,
    epsilon2_for_stream_words,
    gk_tuple_estimate,
    historical_summary_words,
    stream_summary_words,
)


class TestModels:
    def test_gk_tuple_estimate_decreases_with_epsilon(self):
        assert gk_tuple_estimate(0.01, 10**6) > gk_tuple_estimate(0.1, 10**6)

    def test_gk_tuple_estimate_validation(self):
        with pytest.raises(ValueError):
            gk_tuple_estimate(0.0, 100)

    def test_stream_words_monotone(self):
        assert stream_summary_words(0.001, 10**6) > stream_summary_words(
            0.01, 10**6
        )

    def test_historical_words_formula(self):
        # beta1 = 11, kappa = 10, T = 100 -> 1 level? no: log_10(100) = 2
        words = historical_summary_words(0.1, kappa=10, num_steps=100)
        assert words == 2 * 11 * 10 * 2

    def test_inversion_roundtrip_stream(self):
        target = 50_000.0
        eps = epsilon2_for_stream_words(target, stream_size=10**6)
        achieved = stream_summary_words(eps, 10**6)
        assert achieved == pytest.approx(target, rel=0.01)

    def test_inversion_roundtrip_historical(self):
        target = 80_000.0
        eps = epsilon1_for_historical_words(target, kappa=10, num_steps=100)
        achieved = historical_summary_words(eps, 10, 100)
        assert achieved == pytest.approx(target, rel=0.05)

    def test_inversion_validates_tiny_budget(self):
        with pytest.raises(ValueError):
            epsilon2_for_stream_words(1.0, 100)


class TestMemoryBudget:
    def test_from_megabytes(self):
        budget = MemoryBudget.from_megabytes(1.0)
        assert budget.total_words == WORDS_PER_MB

    def test_default_split_is_half(self):
        budget = MemoryBudget(total_words=1000)
        assert budget.stream_words == 500
        assert budget.historical_words == 500

    def test_custom_split(self):
        budget = MemoryBudget(total_words=1000, stream_fraction=0.8)
        assert budget.stream_words == pytest.approx(800)
        assert budget.historical_words == pytest.approx(200)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryBudget(total_words=0)
        with pytest.raises(ValueError):
            MemoryBudget(total_words=100, stream_fraction=0.0)
        with pytest.raises(ValueError):
            MemoryBudget(total_words=100, stream_fraction=1.0)

    def test_more_memory_means_smaller_epsilon(self):
        small = MemoryBudget.from_megabytes(0.1)
        large = MemoryBudget.from_megabytes(1.0)
        eps_small = epsilon_for_budget(small, 10**6, 10, 100)
        eps_large = epsilon_for_budget(large, 10**6, 10, 100)
        assert eps_large < eps_small

    def test_epsilons_fit_budget(self):
        budget = MemoryBudget.from_megabytes(0.5)
        eps1, eps2 = budget.epsilons(10**6, kappa=10, num_steps=100)
        assert stream_summary_words(eps2, 10**6) <= budget.stream_words * 1.01
        assert (
            historical_summary_words(eps1, 10, 100)
            <= budget.historical_words * 1.05
        )
