"""Tests for quantile monitors and alerting."""

import numpy as np
import pytest

from repro import HybridQuantileEngine, QuantileWatcher
from repro.core.monitoring import MonitorRule


def build_engine(rng, low=0, high=1000):
    engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
    for _ in range(3):
        engine.stream_update_batch(rng.integers(low, high, 1500))
        engine.end_time_step()
    engine.stream_update_batch(rng.integers(low, high, 1500))
    return engine


class TestMonitorRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorRule("x", phi=0.0, threshold=1, direction="above")
        with pytest.raises(ValueError):
            MonitorRule("x", phi=0.5, threshold=1, direction="sideways")
        with pytest.raises(ValueError):
            MonitorRule("x", phi=0.5, threshold=1, direction="above",
                        mode="psychic")

    def test_direction_semantics(self):
        above = MonitorRule("a", 0.5, 100, "above")
        below = MonitorRule("b", 0.5, 100, "below")
        assert above.triggered_by(101)
        assert not above.triggered_by(100)
        assert below.triggered_by(99)
        assert not below.triggered_by(100)


class TestQuantileWatcher:
    def test_no_rules_no_alerts(self, rng):
        engine = build_engine(rng)
        assert QuantileWatcher(engine).evaluate() == []

    def test_add_validation(self, rng):
        watcher = QuantileWatcher(build_engine(rng))
        with pytest.raises(ValueError):
            watcher.add("x", 0.5)
        with pytest.raises(ValueError):
            watcher.add("x", 0.5, above=1, below=2)
        watcher.add("x", 0.5, above=1)
        with pytest.raises(ValueError):
            watcher.add("x", 0.5, above=2)  # duplicate name

    def test_remove(self, rng):
        watcher = QuantileWatcher(build_engine(rng))
        watcher.add("x", 0.5, above=1)
        watcher.remove("x")
        assert watcher.rules == []
        with pytest.raises(KeyError):
            watcher.remove("x")

    def test_triggering_above(self, rng):
        engine = build_engine(rng, low=0, high=1000)
        watcher = QuantileWatcher(engine)
        watcher.add("median-high", phi=0.5, above=100)  # median ~500
        watcher.add("median-low", phi=0.5, above=2000)  # never
        alerts = watcher.evaluate()
        assert [a.rule.name for a in alerts] == ["median-high"]
        assert alerts[0].observed > 100

    def test_triggering_below(self, rng):
        engine = build_engine(rng, low=0, high=1000)
        watcher = QuantileWatcher(engine)
        watcher.add("p95-dip", phi=0.95, below=2000)  # p95 ~950 < 2000
        assert len(watcher.evaluate()) == 1

    def test_alert_fires_after_distribution_shift(self, rng):
        engine = build_engine(rng, low=0, high=1000)
        watcher = QuantileWatcher(engine)
        watcher.add("p99-latency", phi=0.99, above=5000)
        assert watcher.evaluate() == []
        # tail blowup in the live stream
        engine.stream_update_batch(np.full(2000, 50_000))
        alerts = watcher.evaluate()
        assert len(alerts) == 1
        assert alerts[0].observed >= 5000

    def test_accurate_mode_rules(self, rng):
        engine = build_engine(rng)
        watcher = QuantileWatcher(engine)
        watcher.add("exact-median", phi=0.5, above=100, mode="accurate")
        alerts = watcher.evaluate()
        assert len(alerts) == 1

    def test_alerts_share_one_snapshot(self, rng):
        """All rules in one evaluate() see identical N."""
        engine = build_engine(rng)
        watcher = QuantileWatcher(engine)
        for i, phi in enumerate((0.1, 0.5, 0.9)):
            watcher.add(f"rule{i}", phi=phi, above=0)  # always fires
        alerts = watcher.evaluate()
        assert len(alerts) == 3
        assert len({a.total_size for a in alerts}) == 1
        assert len({a.at_step for a in alerts}) == 1

    def test_empty_engine(self):
        engine = HybridQuantileEngine(epsilon=0.1)
        watcher = QuantileWatcher(engine)
        watcher.add("x", 0.5, above=1)
        assert watcher.evaluate() == []


class TestServiceRule:
    """ServiceRule is duck-typed: any snapshot-shaped object works."""

    class FakeSnapshot:
        def __init__(self, queue_depth=0, p99=0.0, rejections=0):
            self.queue_depth = queue_depth
            self.rejections = rejections
            self._p99 = p99

        def p99(self, mode="quick"):
            return self._p99

    def test_requires_at_least_one_bound(self):
        from repro.core import ServiceRule
        with pytest.raises(ValueError):
            ServiceRule(name="empty")
        with pytest.raises(ValueError):
            ServiceRule(name="neg", max_queue_depth=-1)
        with pytest.raises(ValueError):
            ServiceRule(name="mode", max_queue_depth=1, mode="fast")

    def test_breaches_name_exceeded_bounds(self):
        from repro.core import ServiceRule
        rule = ServiceRule(
            name="svc",
            max_queue_depth=4,
            max_p99_seconds=0.5,
            max_rejections=0,
        )
        quiet = self.FakeSnapshot(queue_depth=4, p99=0.5, rejections=0)
        assert rule.breaches(quiet) == ()
        noisy = self.FakeSnapshot(queue_depth=5, p99=0.6, rejections=1)
        assert rule.breaches(noisy) == (
            "queue_depth", "p99", "rejections"
        )

    def test_watch_service_with_fake_source(self, rng):
        engine = build_engine(rng)
        watcher = QuantileWatcher(engine)
        state = {"snapshot": self.FakeSnapshot()}
        watcher.watch_service(
            "svc",
            lambda: state["snapshot"],
            max_queue_depth=2,
        )
        assert watcher.check_service() == []
        state["snapshot"] = self.FakeSnapshot(queue_depth=9)
        alerts = watcher.check_service()
        assert len(alerts) == 1
        assert alerts[0].queue_depth == 9
        assert alerts[0].breaches == ("queue_depth",)
        assert "svc" in str(alerts[0])
        watcher.remove("svc")
        assert watcher.check_service() == []
        with pytest.raises(KeyError):
            watcher.remove("svc")
