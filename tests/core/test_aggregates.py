"""Tests for exact aggregate queries."""

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.core.aggregates import AggregateStats, combine


class TestAggregateStats:
    def test_of_array(self):
        stats = AggregateStats.of_array(np.asarray([3, 1, 4, 1, 5]))
        assert stats.count == 5
        assert stats.total == 14
        assert stats.minimum == 1
        assert stats.maximum == 5
        assert stats.mean == pytest.approx(2.8)

    def test_empty(self):
        stats = AggregateStats.empty()
        assert stats.count == 0
        assert stats.mean != stats.mean  # NaN

    def test_merge(self):
        a = AggregateStats.of_array(np.asarray([1, 2]))
        b = AggregateStats.of_array(np.asarray([10]))
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.total == 13
        assert merged.minimum == 1
        assert merged.maximum == 10

    def test_merge_with_empty(self):
        a = AggregateStats.of_array(np.asarray([1, 2]))
        assert a.merge(AggregateStats.empty()) == a
        assert AggregateStats.empty().merge(a) == a

    def test_combine(self):
        parts = [
            AggregateStats.of_array(np.asarray([i, i + 1]))
            for i in range(5)
        ]
        total = combine(parts)
        assert total.count == 10
        assert total.total == sum(i + i + 1 for i in range(5))


class TestEngineAggregates:
    def _build(self, rng, steps=7, batch=1000, kappa=2):
        engine = HybridQuantileEngine(
            epsilon=0.05, kappa=kappa, block_elems=16
        )
        step_data = []
        for _ in range(steps):
            data = rng.integers(0, 10**6, batch)
            step_data.append(data)
            engine.stream_update_batch(data)
            engine.end_time_step()
        live = rng.integers(0, 10**6, batch)
        engine.stream_update_batch(live)
        return engine, step_data, live

    def test_full_union_exact(self, rng):
        engine, step_data, live = self._build(rng)
        everything = np.concatenate(step_data + [live])
        stats = engine.aggregate()
        assert stats.count == len(everything)
        assert stats.total == int(everything.sum())
        assert stats.minimum == int(everything.min())
        assert stats.maximum == int(everything.max())
        assert stats.mean == pytest.approx(everything.mean())

    def test_window_exact(self, rng):
        engine, step_data, live = self._build(rng)
        scoped = np.concatenate([step_data[-1], live])
        stats = engine.aggregate(window_steps=1)
        assert stats.count == len(scoped)
        assert stats.total == int(scoped.sum())

    def test_step_range_exact_excludes_stream(self, rng):
        engine, step_data, live = self._build(rng)
        scoped = np.concatenate(step_data[4:6])  # partitions (5-6)
        stats = engine.aggregate(step_range=(5, 6))
        assert stats.count == len(scoped)
        assert stats.total == int(scoped.sum())
        assert stats.maximum == int(scoped.max())

    def test_no_disk_accesses(self, rng):
        engine, *_ = self._build(rng)
        before = engine.disk.stats.counters.total
        engine.aggregate()
        engine.aggregate(window_steps=1)
        assert engine.disk.stats.counters.total == before

    def test_survives_merges(self, rng):
        """Merged partitions carry correct merged stats."""
        engine, step_data, live = self._build(rng, steps=9, kappa=2)
        merged = [p for p in engine.store.partitions() if p.num_steps > 1]
        assert merged, "expected at least one merged partition"
        for partition in merged:
            assert partition.stats.count == len(partition)

    def test_stream_only(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=2, block_elems=16)
        data = rng.integers(0, 100, 500)
        engine.stream_update_batch(data)
        stats = engine.aggregate()
        assert stats.count == 500
        assert stats.total == int(data.sum())

    def test_single_updates_tracked(self):
        engine = HybridQuantileEngine(epsilon=0.1)
        for v in (5, 3, 8):
            engine.stream_update(v)
        stats = engine.aggregate()
        assert (stats.count, stats.total, stats.minimum, stats.maximum) == (
            3, 16, 3, 8
        )

    def test_mutually_exclusive_scopes(self, rng):
        engine, *_ = self._build(rng)
        with pytest.raises(ValueError):
            engine.aggregate(window_steps=1, step_range=(1, 4))
