"""Property tests for TS and the Lemma 2 rank bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import CombinedSummary
from repro.core.summaries import PartitionSummary, StreamSummary
from repro.sketches import GKSketch
from repro.storage import SimulatedDisk, SortedRun
from repro.warehouse import Partition


def build_scene(partition_datas, stream_data, eps1=0.25, eps2=0.125):
    """Construct summaries plus the flattened exact dataset."""
    disk = SimulatedDisk(block_elems=8)
    summaries = []
    for data in partition_datas:
        run = SortedRun(disk, np.sort(np.asarray(data, dtype=np.int64)))
        p = Partition(level=0, start_step=1, end_step=1, run=run)
        summaries.append(PartitionSummary.build(p, eps1))
    gk = GKSketch(eps2 / 2.0)
    stream = np.asarray(stream_data, dtype=np.int64)
    if stream.size:
        gk.update_batch(stream)
    ss = StreamSummary.extract(gk, eps2)
    combined = CombinedSummary.build(summaries, ss)
    everything = np.sort(
        np.concatenate(
            [np.asarray(d, dtype=np.int64) for d in partition_datas]
            + [stream]
        )
    )
    return combined, everything


class TestCombinedSummary:
    def test_empty_everything_raises(self):
        with pytest.raises(ValueError):
            build_scene([], [])

    def test_total_size(self):
        combined, everything = build_scene(
            [range(100), range(50)], range(200)
        )
        assert combined.total_size == len(everything) == 350

    def test_values_sorted(self):
        combined, _ = build_scene([range(100)], range(50, 150))
        assert np.all(np.diff(combined.values) >= 0)

    def test_bounds_monotone(self):
        combined, _ = build_scene(
            [range(100), range(200, 300)], range(150, 250)
        )
        assert np.all(np.diff(combined.lower) >= -1e-9)
        assert np.all(np.diff(combined.upper) >= -1e-9)

    def test_stream_only(self):
        combined, everything = build_scene([], range(1000))
        assert combined.total_size == 1000
        assert combined.from_stream.all()

    def test_historical_only(self):
        combined, everything = build_scene([range(1000)], [])
        assert combined.total_size == 1000
        assert not combined.from_stream.any()

    def test_lemma2_gap_bound(self):
        """Lemma 2 part 2: U_i - L_i <= eps * N with eps = 2*eps1 = 4*eps2."""
        rng = np.random.default_rng(0)
        parts = [rng.integers(0, 10**6, 700) for _ in range(3)]
        stream = rng.integers(0, 10**6, 700)
        eps1, eps2 = 0.25, 0.125
        combined, everything = build_scene(parts, stream, eps1, eps2)
        epsilon = max(2 * eps1, 4 * eps2)
        gaps = combined.upper - combined.lower
        assert gaps.max() <= epsilon * combined.total_size + 1e-6


class TestFilters:
    def test_filters_bracket_rank(self):
        rng = np.random.default_rng(1)
        parts = [rng.integers(0, 10**6, 500) for _ in range(2)]
        stream = rng.integers(0, 10**6, 400)
        combined, everything = build_scene(parts, stream)
        for r in (1, 10, 350, 700, 1400):
            u, v = combined.generate_filters(r)
            rank_u = int(np.searchsorted(everything, u, side="right"))
            rank_v = int(np.searchsorted(everything, v, side="right"))
            assert rank_u <= r <= rank_v, (r, u, v, rank_u, rank_v)

    def test_filter_gap_bound(self):
        """Lemma 4: rank(v) - rank(u) < 4 eps N."""
        rng = np.random.default_rng(2)
        parts = [rng.integers(0, 10**6, 600) for _ in range(3)]
        stream = rng.integers(0, 10**6, 600)
        eps1, eps2 = 0.25, 0.125
        combined, everything = build_scene(parts, stream, eps1, eps2)
        epsilon = max(2 * eps1, 4 * eps2)
        for r in range(1, combined.total_size, 97):
            u, v = combined.generate_filters(r)
            rank_u = int(np.searchsorted(everything, u, side="right"))
            rank_v = int(np.searchsorted(everything, v, side="right"))
            assert rank_v - rank_u <= 4 * epsilon * combined.total_size + 1


class TestBoundsProperty:
    @given(
        parts=st.lists(
            st.lists(st.integers(0, 10**5), min_size=1, max_size=150),
            min_size=0,
            max_size=3,
        ),
        stream=st.lists(st.integers(0, 10**5), min_size=0, max_size=150),
        r_fraction=st.floats(0.01, 1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_lemma2_bracketing(self, parts, stream, r_fraction):
        """L_i <= rank(TS[i], T) <= U_i for every TS element."""
        if not parts and not stream:
            return
        combined, everything = build_scene(parts, stream, 0.25, 0.125)
        for value, lo, up in zip(
            combined.values, combined.lower, combined.upper
        ):
            true = int(np.searchsorted(everything, value, side="right"))
            assert lo <= true + 1e-9
            assert true <= up + 1e-9
        r = max(1, int(r_fraction * combined.total_size))
        u, v = combined.generate_filters(r)
        rank_u = int(np.searchsorted(everything, u, side="right"))
        rank_v = int(np.searchsorted(everything, v, side="right"))
        assert rank_u <= r <= rank_v
