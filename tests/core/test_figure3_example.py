"""Golden test: the worked example of the paper's Figure 3.

Three partitions (1..100, 101..200, 2..201), a stream 401..600 with the
summary values printed in the figure, eps = 1/2 (eps1 = 1/4,
eps2 = 1/8).  The figure lists TS and, for every element, the bounds
L_i and U_i; this test reproduces all three rows exactly.
"""

import numpy as np

from repro.core.bounds import CombinedSummary
from repro.core.summaries import PartitionSummary, StreamSummary
from repro.storage import SimulatedDisk, SortedRun
from repro.warehouse import Partition

EPS1 = 0.25
EPS2 = 0.125

EXPECTED_TS = [
    1, 2, 25, 50, 51, 75, 100, 101, 101, 125, 150, 151,
    175, 200, 201, 401, 438, 452, 480, 520, 530, 565, 595, 600,
]
EXPECTED_L = [
    0, 0, 25, 50, 100, 125, 150, 200, 200, 225, 250, 300,
    325, 350, 400, 400, 425, 450, 475, 500, 525, 550, 575, 600,
]
EXPECTED_U = [
    25, 75, 100, 125, 175, 200, 225, 300, 300, 325, 350, 400,
    425, 450, 500, 525, 550, 575, 600, 625, 650, 675, 700, 725,
]
STREAM_SUMMARY = [401, 438, 452, 480, 520, 530, 565, 595, 600]


def build_example():
    disk = SimulatedDisk(block_elems=16)

    def partition(data):
        run = SortedRun(disk, np.asarray(data, dtype=np.int64))
        p = Partition(level=0, start_step=1, end_step=1, run=run)
        p.summary = PartitionSummary.build(p, EPS1)
        return p

    p1 = partition(np.arange(1, 101))
    p2 = partition(np.arange(101, 201))
    p3 = partition(np.arange(2, 202))
    ss = StreamSummary(
        values=np.asarray(STREAM_SUMMARY, dtype=np.int64),
        stream_size=200,
        eps2=EPS2,
    )
    combined = CombinedSummary.build([p1.summary, p2.summary, p3.summary], ss)
    return p1, p2, p3, ss, combined


class TestFigure3:
    def test_partition_summaries(self):
        p1, p2, p3, _, _ = build_example()
        np.testing.assert_array_equal(p1.summary.values, [1, 25, 50, 75, 100])
        np.testing.assert_array_equal(
            p2.summary.values, [101, 125, 150, 175, 200]
        )
        np.testing.assert_array_equal(p3.summary.values, [2, 51, 101, 151, 201])
        np.testing.assert_array_equal(p3.summary.positions, [1, 50, 100, 150, 200])

    def test_ts_values(self):
        *_, combined = build_example()
        assert combined.total_size == 600
        np.testing.assert_array_equal(combined.values, EXPECTED_TS)

    def test_lower_bounds_match_figure(self):
        *_, combined = build_example()
        np.testing.assert_allclose(combined.lower, EXPECTED_L)

    def test_upper_bounds_match_figure(self):
        *_, combined = build_example()
        np.testing.assert_allclose(combined.upper, EXPECTED_U)

    def test_bounds_bracket_true_ranks(self):
        """Lemma 2 part 1 on the example's actual data."""
        p1, p2, p3, ss, combined = build_example()
        everything = np.concatenate(
            [
                np.arange(1, 101),
                np.arange(101, 201),
                np.arange(2, 202),
                np.arange(401, 601),
            ]
        )
        everything.sort()
        for value, lo, up in zip(
            combined.values, combined.lower, combined.upper
        ):
            true = int(np.searchsorted(everything, value, side="right"))
            assert lo <= true <= up, (value, lo, true, up)

    def test_quick_response_definition(self):
        *_, combined = build_example()
        # smallest j with L_j >= 300 is the element 151
        assert combined.quick_response(300) == 151
        # beyond every bound: returns the last element
        assert combined.quick_response(10**6) == 600

    def test_generate_filters_bracket(self):
        *_, combined = build_example()
        u, v = combined.generate_filters(300)
        assert (u, v) == (101, 151)

    def test_generate_filters_low_rank(self):
        *_, combined = build_example()
        u, v = combined.generate_filters(1)
        assert u == 0  # min - 1 sentinel, rank 0
        # smallest i with L_i >= 1 is the element 25 (L = 25)
        assert v == 25
