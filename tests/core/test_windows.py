"""Tests for windowed queries (Section 2.4)."""

import pytest

from repro import ExactQuantiles, HybridQuantileEngine, WindowNotAlignedError


def build(rng, steps=7, batch=1000, live=1000, kappa=2):
    engine = HybridQuantileEngine(epsilon=0.05, kappa=kappa, block_elems=16)
    step_data = []
    for _ in range(steps):
        data = rng.integers(0, 10**6, batch)
        step_data.append(data)
        engine.stream_update_batch(data)
        engine.end_time_step()
    live_data = rng.integers(0, 10**6, live)
    engine.stream_update_batch(live_data)
    return engine, step_data, live_data


class TestWindowQueries:
    def test_available_sizes(self, rng):
        engine, *_ = build(rng, steps=7, kappa=2)
        # partitions: (1-4), (5-6), (7)
        assert engine.available_window_sizes() == [1, 3, 7]

    def test_unaligned_raises_with_alternatives(self, rng):
        engine, *_ = build(rng, steps=7, kappa=2)
        with pytest.raises(WindowNotAlignedError) as excinfo:
            engine.quantile(0.5, window_steps=2)
        assert excinfo.value.available == [1, 3, 7]

    def test_window_error_guarantee(self, rng):
        epsilon = 0.05
        engine, step_data, live_data = build(rng, steps=7, kappa=2)
        for window in engine.available_window_sizes():
            oracle = ExactQuantiles()
            for data in step_data[-window:]:
                oracle.update_batch(data)
            oracle.update_batch(live_data)
            result = engine.quantile(0.5, window_steps=window)
            assert result.total_size == oracle.n
            high = oracle.rank(result.value)
            low = oracle.rank_strict(result.value) + 1
            target = result.target_rank
            err = max(0, low - target, target - high)
            assert err <= 1.5 * epsilon * len(live_data) + 2

    def test_window_covers_stream_plus_suffix(self, rng):
        engine, step_data, live_data = build(rng, steps=7, kappa=2)
        result = engine.quantile(0.5, window_steps=1)
        assert result.total_size == len(step_data[-1]) + len(live_data)

    def test_window_distribution_shift(self, rng):
        """A window query must reflect only recent data."""
        engine = HybridQuantileEngine(epsilon=0.05, kappa=2, block_elems=16)
        # old data near 0, recent data near 10^6
        for _ in range(6):
            engine.stream_update_batch(rng.integers(0, 100, 1000))
            engine.end_time_step()
        engine.stream_update_batch(rng.integers(10**6, 2 * 10**6, 1000))
        engine.end_time_step()
        engine.stream_update_batch(rng.integers(10**6, 2 * 10**6, 1000))
        full = engine.quantile(0.5)
        windowed = engine.quantile(0.5, window_steps=1)
        assert windowed.value >= 10**6
        assert full.value < 10**6

    def test_quick_mode_window(self, rng):
        engine, *_ = build(rng, steps=7, kappa=2)
        result = engine.quantile(0.5, window_steps=3, mode="quick")
        assert result.window_steps == 3
        assert result.disk_accesses == 0
