"""Tests for the Lemma 5 'fetch' query strategy."""

import numpy as np
import pytest

from repro import EngineConfig, ExactQuantiles, HybridQuantileEngine

from ..conftest import fill_engine


def build(rng, strategy="fetch", epsilon=0.05, **config_kwargs):
    config = EngineConfig(
        epsilon=epsilon,
        kappa=3,
        block_elems=16,
        query_strategy=strategy,
        **config_kwargs,
    )
    engine = HybridQuantileEngine(config=config)
    data = fill_engine(engine, rng, steps=6, batch=2000, live=2000)
    oracle = ExactQuantiles()
    oracle.update_batch(data)
    return engine, oracle


def interval_error(oracle, value, target):
    high = oracle.rank(value)
    low = oracle.rank_strict(value) + 1
    return max(0, low - target, target - high)


class TestFetchStrategy:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, query_strategy="teleport")
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, residual_fetch_elems=0)

    def test_residual_threshold_default(self):
        config = EngineConfig(epsilon=0.01, block_elems=16)
        assert config.residual_threshold == 100
        config = EngineConfig(epsilon=0.5, block_elems=64)
        assert config.residual_threshold == 64

    def test_guarantee_holds(self, rng):
        epsilon = 0.05
        engine, oracle = build(rng, epsilon=epsilon)
        for phi in (0.05, 0.25, 0.5, 0.75, 0.95, 1.0):
            result = engine.quantile(phi)
            err = interval_error(oracle, result.value, result.target_rank)
            assert err <= 1.5 * epsilon * engine.m_stream + 2, (phi, err)

    def test_returns_actual_element(self, rng):
        engine, oracle = build(rng)
        result = engine.quantile(0.5)
        assert oracle.rank(result.value) > oracle.rank_strict(result.value)

    def test_agrees_with_bisect_within_guarantee(self, rng):
        epsilon = 0.02
        seeds = np.random.default_rng(77)
        answers = {}
        for strategy in ("bisect", "fetch"):
            inner = np.random.default_rng(4242)
            engine, oracle = build(inner, strategy=strategy, epsilon=epsilon)
            result = engine.quantile(0.5)
            answers[strategy] = interval_error(
                oracle, result.value, result.target_rank
            )
        for strategy, err in answers.items():
            assert err <= 1.5 * epsilon * 2000 + 2, (strategy, err)

    def test_disk_accesses_counted(self, rng):
        engine, _ = build(rng)
        result = engine.quantile(0.5)
        assert result.disk_accesses > 0

    def test_small_residual_threshold(self, rng):
        """A tiny residual threshold forces deeper narrowing."""
        engine, oracle = build(rng, residual_fetch_elems=8)
        result = engine.quantile(0.5)
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 1.5 * 0.05 * engine.m_stream + 2

    def test_pure_historical(self, rng):
        config = EngineConfig(
            epsilon=0.05, kappa=3, block_elems=16, query_strategy="fetch"
        )
        engine = HybridQuantileEngine(config=config)
        oracle = ExactQuantiles()
        for _ in range(4):
            data = rng.integers(0, 10**6, 1500)
            oracle.update_batch(data)
            engine.stream_update_batch(data)
            engine.end_time_step()
        result = engine.quantile(0.5)
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 2

    def test_windows_work_with_fetch(self, rng):
        engine, _ = build(rng)
        window = engine.available_window_sizes()[0]
        result = engine.quantile(0.5, window_steps=window)
        assert result.window_steps == window
