"""Tests for the partition (HS) and stream (SS) summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.summaries import PartitionSummary, StreamSummary
from repro.sketches import GKSketch
from repro.storage import SimulatedDisk, SortedRun
from repro.warehouse import Partition


def make_partition(data, block_elems=8):
    disk = SimulatedDisk(block_elems=block_elems)
    run = SortedRun(disk, np.sort(np.asarray(data, dtype=np.int64)))
    return Partition(level=0, start_step=1, end_step=1, run=run)


class TestPartitionSummary:
    def test_starts_at_minimum(self):
        p = make_partition(np.arange(10, 110))
        s = PartitionSummary.build(p, eps1=0.25)
        assert s.values[0] == 10
        assert s.positions[0] == 1

    def test_ends_at_maximum(self):
        p = make_partition(np.arange(10, 110))
        s = PartitionSummary.build(p, eps1=0.25)
        assert s.values[-1] == 109
        assert s.positions[-1] == 100

    def test_even_rank_spacing(self):
        p = make_partition(np.arange(1, 101))
        s = PartitionSummary.build(p, eps1=0.25)
        np.testing.assert_array_equal(s.positions, [1, 25, 50, 75, 100])

    def test_gap_bound(self):
        p = make_partition(np.random.default_rng(0).integers(0, 10**6, 997))
        s = PartitionSummary.build(p, eps1=0.1)
        gaps = np.diff(s.positions)
        assert gaps.max() <= 0.1 * 997 + 1

    def test_tiny_partition_dedupes_positions(self):
        p = make_partition([3, 7])
        s = PartitionSummary.build(p, eps1=0.01)
        assert len(s) <= 2
        assert s.partition_size == 2

    def test_empty_partition(self):
        p = make_partition([])
        s = PartitionSummary.build(p, eps1=0.25)
        assert len(s) == 0
        assert s.partition_size == 0

    def test_alpha_counts_le(self):
        p = make_partition(np.arange(1, 101))
        s = PartitionSummary.build(p, eps1=0.25)
        assert s.alpha(0) == 0
        assert s.alpha(1) == 1
        assert s.alpha(60) == 3
        assert s.alpha(1000) == 5

    def test_search_bounds_contain_boundary(self):
        data = np.sort(np.random.default_rng(1).integers(0, 10**6, 500))
        p = make_partition(data)
        s = PartitionSummary.build(p, eps1=0.1)
        for probe in np.random.default_rng(2).integers(0, 10**6, 50):
            lo, hi = s.search_bounds(int(probe))
            boundary = int(np.searchsorted(data, probe, side="right"))
            assert lo <= boundary <= hi

    def test_build_charges_no_io(self):
        disk = SimulatedDisk(block_elems=8)
        run = SortedRun(disk, np.arange(100), charge_write=False)
        p = Partition(level=0, start_step=1, end_step=1, run=run)
        PartitionSummary.build(p, eps1=0.25)
        assert disk.stats.counters.total == 0

    def test_memory_words(self):
        p = make_partition(np.arange(1, 101))
        s = PartitionSummary.build(p, eps1=0.25)
        assert s.memory_words() == 2 * 5 + 2


class TestStreamSummary:
    def _build(self, data, eps2=0.1):
        gk = GKSketch(eps2 / 2.0)
        gk.update_batch(np.asarray(data, dtype=np.int64))
        return StreamSummary.extract(gk, eps2)

    def test_empty_stream(self):
        ss = StreamSummary.extract(GKSketch(0.05), eps2=0.1)
        assert ss.is_empty
        assert len(ss) == 0
        assert ss.rank_estimate(5) == 0.0

    def test_starts_at_exact_min(self):
        rng = np.random.default_rng(3)
        data = rng.integers(100, 10**6, 5000)
        ss = self._build(data)
        assert ss.values[0] == data.min()

    def test_lemma1_guarantee(self):
        """SS[i] has true rank in [i*eps2*m, (i+1)*eps2*m] for i >= 1."""
        rng = np.random.default_rng(4)
        data = np.sort(rng.integers(0, 10**6, 8000))
        eps2 = 0.1
        ss = self._build(data, eps2)
        m = len(data)
        for i in range(1, len(ss)):
            value = int(ss.values[i])
            high = int(np.searchsorted(data, value, side="right"))
            low = int(np.searchsorted(data, value, side="left")) + 1
            lo_bound = i * eps2 * m
            hi_bound = (i + 1) * eps2 * m
            # The value's rank interval must intersect the Lemma 1 bracket.
            assert low <= hi_bound + 1e-9, (i, low, hi_bound)
            assert high >= lo_bound - 1e-9, (i, high, lo_bound)

    def test_values_sorted(self):
        rng = np.random.default_rng(5)
        ss = self._build(rng.integers(0, 10**6, 3000))
        assert np.all(np.diff(ss.values) >= 0)

    def test_length_is_beta2(self):
        rng = np.random.default_rng(6)
        ss = self._build(rng.integers(0, 10**6, 3000), eps2=0.125)
        assert len(ss) == 9  # ceil(1/0.125) + 1

    def test_alpha_and_rank_estimate(self):
        ss = StreamSummary(
            values=np.asarray([10, 20, 30], dtype=np.int64),
            stream_size=100,
            eps2=0.25,
        )
        assert ss.alpha(5) == 0
        assert ss.alpha(20) == 2
        assert ss.rank_estimate(20) == pytest.approx(50.0)

    def test_largest_at_most(self):
        ss = StreamSummary(
            values=np.asarray([10, 20, 30], dtype=np.int64),
            stream_size=100,
            eps2=0.25,
        )
        assert ss.largest_at_most(5) is None
        assert ss.largest_at_most(25) == 20
        assert ss.largest_at_most(30) == 30

    def test_upper_bound_below_min_is_zero(self):
        ss = StreamSummary(
            values=np.asarray([10, 20], dtype=np.int64),
            stream_size=100,
            eps2=0.25,
        )
        assert ss.rank_upper_bound(0, from_stream=False) == 0.0


class TestSummaryProperty:
    @given(
        data=st.lists(st.integers(0, 10**6), min_size=2, max_size=400),
        eps1=st.sampled_from([0.5, 0.25, 0.1]),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_summary_rank_consistency(self, data, eps1):
        """Every stored (value, position) pair is truthful."""
        p = make_partition(data)
        s = PartitionSummary.build(p, eps1=eps1)
        arr = np.sort(np.asarray(data, dtype=np.int64))
        for value, pos in zip(s.values, s.positions):
            assert arr[pos - 1] == value
        assert s.values[0] == arr[0]
        assert s.values[-1] == arr[-1]
