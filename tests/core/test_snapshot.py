"""Tests for consistent read snapshots."""

import numpy as np
import pytest

from repro import EngineSnapshot, ExactQuantiles, HybridQuantileEngine

from ..conftest import fill_engine


def build(rng):
    engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
    data = fill_engine(engine, rng, steps=5, batch=1500, live=1500)
    return engine, data


class TestSnapshot:
    def test_matches_engine_at_creation(self, rng):
        engine, _ = build(rng)
        view = EngineSnapshot(engine)
        for phi in (0.1, 0.5, 0.9):
            for mode in ("quick", "accurate"):
                assert (
                    view.quantile(phi, mode=mode).value
                    == engine.quantile(phi, mode=mode).value
                )

    def test_immune_to_later_ingestion(self, rng):
        engine, data = build(rng)
        view = EngineSnapshot(engine)
        before = view.quantile(0.5).value
        # shift the engine's distribution drastically
        engine.stream_update_batch(np.full(50_000, 10**9))
        assert view.quantile(0.5).value == before
        assert view.n_total == len(data)
        assert engine.quantile(0.5).value != before

    def test_immune_to_merges(self, rng):
        engine, data = build(rng)
        view = EngineSnapshot(engine)
        before = [view.quantile(phi).value for phi in (0.25, 0.5, 0.75)]
        # trigger several merge cascades
        for _ in range(9):
            engine.stream_update_batch(rng.integers(0, 10**6, 1500))
            engine.end_time_step()
        after = [view.quantile(phi).value for phi in (0.25, 0.5, 0.75)]
        assert before == after

    def test_accuracy_guarantee_holds(self, rng):
        engine, data = build(rng)
        oracle = ExactQuantiles()
        oracle.update_batch(data)
        view = EngineSnapshot(engine)
        engine.stream_update_batch(rng.integers(0, 10**6, 5000))
        result = view.quantile(0.5)
        high = oracle.rank(result.value)
        low = oracle.rank_strict(result.value) + 1
        err = max(0, low - result.target_rank, result.target_rank - high)
        assert err <= 1.5 * 0.05 * view.m_stream + 2

    def test_batch_quantiles_consistent(self, rng):
        engine, _ = build(rng)
        view = EngineSnapshot(engine)
        results = view.quantiles((0.25, 0.5, 0.75))
        assert len(results) == 3
        values = [r.value for r in results]
        assert values == sorted(values)

    def test_empty_snapshot_raises(self):
        engine = HybridQuantileEngine(epsilon=0.1)
        view = EngineSnapshot(engine)
        with pytest.raises(ValueError):
            view.quantile(0.5)

    def test_invalid_mode(self, rng):
        engine, _ = build(rng)
        view = EngineSnapshot(engine)
        with pytest.raises(ValueError):
            view.query_rank(1, mode="psychic")

    def test_engine_snapshot_helper(self, rng):
        from repro.core import snapshot

        engine, _ = build(rng)
        view = snapshot(engine)
        assert view.created_at_step == engine.steps_loaded
