"""Invalidation-correctness stress tests for the shared cache tier.

The satellite requirement: interleave compaction, background adoption
and pinned accurate queries, and assert the shared tier changes neither
the answers nor the accounting — bit-identical quantile values and
block-charge counts versus a serial replay of the same workload with
the shared cache disabled.

Prefetch is held at 0 in the parity tests: prefetching deliberately
trades a few extra cold block reads for ranged I/O, so exact
charge-count parity with the historical accounting is only promised for
the pure read-through configuration (the prefetch answer-identity test
covers the other half).
"""

import threading

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.core.config import EngineConfig

PHIS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def make_engine(shared_blocks, prefetch=0, **overrides):
    config = EngineConfig(
        epsilon=0.05,
        kappa=3,
        block_elems=16,
        compaction="leveled",
        shared_cache_blocks=shared_blocks,
        prefetch_blocks=prefetch,
        **overrides,
    )
    return HybridQuantileEngine(config=config)


def batches(seed, steps, batch=1200):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 1_000_000, batch, dtype=np.int64)
        for _ in range(steps)
    ]


def feed(engine, data):
    for chunk in data:
        engine.stream_update_batch(chunk)
        engine.end_time_step()


def pinned_answers(engine, window_steps=None):
    """(value, disk_accesses) per phi against one pinned snapshot."""
    with engine.pin() as handle:
        results = [
            handle.quantile(phi, mode="accurate", window_steps=window_steps)
            for phi in PHIS
        ]
    return [(r.value, r.disk_accesses) for r in results]


class TestCompactionInterleaving:
    """Pinned queries race compaction merges that retire their runs."""

    def test_pinned_pre_merge_snapshot_matches_disabled_replay(self):
        shared = make_engine(shared_blocks=128)
        plain = make_engine(shared_blocks=0)
        head, tail = batches(7, 4), batches(11, 8)
        feed(shared, head)
        feed(plain, head)
        with shared.pin() as s_handle, plain.pin() as p_handle:
            # Compaction merges under the pins retire the pinned runs
            # (and invalidate them in the shared tier).
            feed(shared, tail)
            feed(plain, tail)
            assert shared.shared_cache.stats().invalidated_runs > 0
            for phi in PHIS:
                s = s_handle.quantile(phi, mode="accurate")
                p = p_handle.quantile(phi, mode="accurate")
                # Probing retired runs just misses: identical answer,
                # identical charge count.
                assert s.value == p.value
                assert s.disk_accesses == p.disk_accesses

    def test_post_merge_cold_queries_match_disabled_replay(self):
        shared = make_engine(shared_blocks=128)
        plain = make_engine(shared_blocks=0)
        data = batches(13, 10)
        feed(shared, data)
        feed(plain, data)
        assert shared.shared_cache.stats().invalidated_runs > 0
        # Every surviving run's blocks were invalidated or never read:
        # the first post-merge sweep is cold and pays exactly the
        # historical accounting.
        assert pinned_answers(shared) == pinned_answers(plain)

    def test_warm_sweep_identical_answers_fewer_charges(self):
        shared = make_engine(shared_blocks=256)
        plain = make_engine(shared_blocks=0)
        data = batches(17, 6)
        feed(shared, data)
        feed(plain, data)
        cold = pinned_answers(shared)
        warm = pinned_answers(shared)
        replay = pinned_answers(plain)
        assert [v for v, _ in cold] == [v for v, _ in replay]
        assert [v for v, _ in warm] == [v for v, _ in replay]
        assert sum(c for _, c in warm) < sum(c for _, c in replay)

    def test_windowed_queries_also_match(self):
        shared = make_engine(shared_blocks=128)
        plain = make_engine(shared_blocks=0)
        data = batches(19, 6)
        feed(shared, data)
        feed(plain, data)
        window = shared.available_window_sizes()[-1]
        assert pinned_answers(shared, window) == pinned_answers(plain, window)


class TestBackgroundAdoptionInterleaving:
    """Accurate queries race background archiving (adoptions)."""

    def run_concurrent(self, seed):
        engine = make_engine(
            shared_blocks=128, ingest_mode="background"
        )
        data = batches(seed, 8)
        errors = []
        answers = []

        def querier():
            try:
                for _ in range(12):
                    with engine.pin() as handle:
                        if handle.n_total == 0:
                            continue
                        handle.quantile(0.5, mode="accurate")
                        handle.quantile(0.95, mode="accurate")
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=querier) for _ in range(3)]
        for thread in threads:
            thread.start()
        feed(engine, data)
        engine.flush()
        for thread in threads:
            thread.join()
        assert not errors
        # Quiesced: the final state must answer exactly like a serial
        # replay of the same batches with the shared tier disabled.
        answers = pinned_answers(engine)
        stats = engine.shared_cache.stats()
        engine.close()
        return data, answers, stats

    def test_final_state_matches_serial_disabled_replay(self):
        data, answers, stats = self.run_concurrent(seed=23)
        plain = make_engine(shared_blocks=0)
        feed(plain, data)
        replay = pinned_answers(plain)
        assert [v for v, _ in answers] == [v for v, _ in replay]
        # Adoptions retired the per-step runs the queries raced.
        assert stats.invalidated_runs > 0

    def test_repeated_seeded_runs_are_deterministic(self):
        _, first, _ = self.run_concurrent(seed=29)
        _, second, _ = self.run_concurrent(seed=29)
        assert first == second


class TestDisabledSharedCacheRegression:
    """``shared_cache_blocks=0`` is exactly the historical accounting."""

    def test_default_config_has_no_shared_tier(self):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        assert engine.shared_cache is None

    def test_per_query_accounting_has_no_cross_query_state(self):
        engine = make_engine(shared_blocks=0)
        feed(engine, batches(31, 6))
        first = pinned_answers(engine)
        second = pinned_answers(engine)
        # Without the shared tier every query pays its own full block
        # set: repeating the sweep repeats the charges exactly.
        assert first == second

    def test_epoch_stats_cache_counters_stay_zero(self):
        engine = make_engine(shared_blocks=0)
        feed(engine, batches(37, 4))
        pinned_answers(engine)
        stats = engine.epoch_stats
        assert stats.cache_hits == 0
        assert stats.cache_misses == 0


class TestPrefetchIdentity:
    """Prefetching narrows I/O patterns, never answers."""

    @pytest.mark.parametrize("prefetch", [1, 4, 16])
    def test_answers_identical_with_prefetch(self, prefetch):
        shared = make_engine(shared_blocks=256, prefetch=prefetch)
        plain = make_engine(shared_blocks=0)
        data = batches(41, 6)
        feed(shared, data)
        feed(plain, data)
        with_prefetch = pinned_answers(shared)
        replay = pinned_answers(plain)
        assert [v for v, _ in with_prefetch] == [v for v, _ in replay]

    def test_prefetch_charges_are_deterministic(self):
        def sweep():
            engine = make_engine(shared_blocks=256, prefetch=4)
            feed(engine, batches(43, 6))
            cold = pinned_answers(engine)
            warm = pinned_answers(engine)
            prefetched = engine.shared_cache.stats().prefetched_blocks
            return cold, warm, prefetched

        assert sweep() == sweep()
