"""`quantile_many`: the batched public query entry point."""

from __future__ import annotations

import numpy as np
import pytest

from ..conftest import fill_engine


@pytest.fixture
def engine(small_engine, rng):
    fill_engine(small_engine, rng, steps=4, batch=1200, live=900)
    return small_engine


PHIS = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99]


class TestQuickMode:
    def test_matches_per_phi_queries(self, engine):
        batch = engine.quantile_many(PHIS, mode="quick")
        for phi, result in zip(PHIS, batch):
            single = engine.quantile(phi, mode="quick")
            assert result.value == single.value
            assert result.target_rank == single.target_rank
            assert result.total_size == single.total_size
            assert result.mode == "quick"
            assert result.disk_accesses == 0

    def test_shares_one_ts_merge(self, engine):
        before = engine.epoch_stats.ts_merges
        engine.quantile_many(PHIS, mode="quick")
        assert engine.epoch_stats.ts_merges == before + 1

    def test_window_scope(self, engine):
        batch = engine.quantile_many([0.5, 0.9], mode="quick",
                                     window_steps=1)
        for phi, result in zip([0.5, 0.9], batch):
            single = engine.quantile(phi, mode="quick", window_steps=1)
            assert result.value == single.value
            assert result.window_steps == 1


class TestAccurateMode:
    def test_matches_quantiles_batch_api(self, engine):
        batch = engine.quantile_many(PHIS, mode="accurate")
        reference = engine.quantiles(PHIS)
        for got, want in zip(batch, reference):
            assert got.value == want.value
            assert got.target_rank == want.target_rank
            assert got.mode == "accurate"


class TestValidation:
    def test_invalid_mode(self, engine):
        with pytest.raises(ValueError):
            engine.quantile_many([0.5], mode="fast")

    def test_empty_phi_list_is_empty_result(self, engine):
        assert engine.quantile_many([], mode="quick") == []

    def test_empty_engine_raises(self, small_engine):
        with pytest.raises(ValueError):
            small_engine.quantile_many([0.5], mode="quick")


def test_order_preserved_with_unsorted_phis(engine):
    phis = [0.9, 0.1, 0.5]
    results = engine.quantile_many(phis, mode="quick")
    values = np.array([r.value for r in results])
    assert values[1] <= values[2] <= values[0]
