"""Tests for the accurate-response search machinery (Algorithm 8)."""

import numpy as np

from repro.core.bounds import CombinedSummary
from repro.core.config import EngineConfig
from repro.core.filters import AccurateSearch
from repro.core.summaries import PartitionSummary, StreamSummary
from repro.sketches import GKSketch
from repro.storage import SimulatedDisk, SortedRun
from repro.warehouse import Partition


def build_search(rng, rank, config=None, partitions=3, size=2000,
                 stream=2000):
    config = config or EngineConfig(epsilon=0.02, block_elems=16)
    disk = SimulatedDisk(block_elems=config.block_elems)
    parts = []
    datas = []
    for _ in range(partitions):
        data = rng.integers(0, 10**6, size)
        datas.append(data)
        run = SortedRun(disk, np.sort(data.astype(np.int64)))
        p = Partition(level=0, start_step=1, end_step=1, run=run)
        p.summary = PartitionSummary.build(p, config.epsilon1)
        parts.append(p)
    stream_data = rng.integers(0, 10**6, stream)
    datas.append(stream_data)
    gk = GKSketch(config.epsilon2 / 2.0)
    gk.update_batch(stream_data)
    ss = StreamSummary.extract(gk, config.epsilon2)
    combined = CombinedSummary.build([p.summary for p in parts], ss)
    search = AccurateSearch(
        partitions=parts,
        stream_summary=ss,
        combined=combined,
        config=config,
        rank=rank,
    )
    everything = np.sort(np.concatenate(datas).astype(np.int64))
    return search, everything, disk


class TestAccurateSearch:
    def test_outcome_within_guarantee(self, rng):
        config = EngineConfig(epsilon=0.02, block_elems=16)
        m = 2000
        for rank in (1, 500, 4000, 7999):
            search, everything, _ = build_search(rng, rank, config)
            outcome = search.run()
            high = int(np.searchsorted(everything, outcome.value, side="right"))
            low = int(np.searchsorted(everything, outcome.value, side="left")) + 1
            err = max(0, low - rank, rank - high)
            assert err <= 1.5 * config.epsilon * m + 2

    def test_estimated_rank_close_to_truth(self, rng):
        config = EngineConfig(epsilon=0.02, block_elems=16)
        search, everything, _ = build_search(rng, 3000, config)
        outcome = search.run()
        true = int(np.searchsorted(everything, outcome.value, side="right"))
        assert abs(outcome.estimated_rank - true) <= config.epsilon2 * 2000 + 2

    def test_value_is_real_element(self, rng):
        search, everything, _ = build_search(rng, 2500)
        outcome = search.run()
        assert outcome.value in everything

    def test_charges_disk_blocks(self, rng):
        search, _, disk = build_search(rng, 2500)
        before = disk.stats.counters.random_reads
        outcome = search.run()
        assert outcome.random_blocks > 0
        assert (
            disk.stats.counters.random_reads - before
            == outcome.random_blocks
        )

    def test_iteration_depth_bounded_by_log_universe(self, rng):
        search, _, _ = build_search(rng, 2500)
        outcome = search.run()
        assert outcome.iterations <= 64

    def test_probe_budget_limits_search(self, rng):
        """The budget stops further bisection; the in-flight estimate
        may still add a bounded number of blocks."""
        inner = np.random.default_rng(4242)
        config = EngineConfig(epsilon=0.0005, block_elems=4, probe_budget=2)
        search, everything, _ = build_search(inner, 2500, config)
        capped = search.run()
        inner = np.random.default_rng(4242)
        free_config = EngineConfig(epsilon=0.0005, block_elems=4)
        free_search, _, _ = build_search(inner, 2500, free_config)
        free = free_search.run()
        assert capped.random_blocks <= free.random_blocks
        assert capped.value in everything

    def test_no_partitions_stream_only(self, rng):
        config = EngineConfig(epsilon=0.02, block_elems=16)
        search, everything, disk = build_search(
            rng, 500, config, partitions=0, stream=2000
        )
        outcome = search.run()
        assert outcome.random_blocks == 0
        high = int(np.searchsorted(everything, outcome.value, side="right"))
        low = int(np.searchsorted(everything, outcome.value, side="left")) + 1
        err = max(0, low - 500, 500 - high)
        assert err <= 1.5 * config.epsilon * 2000 + 2
