"""Tests for the extensions: batched quantiles and parallel latency."""

import numpy as np

from repro import ExactQuantiles, HybridQuantileEngine

from ..conftest import fill_engine

PHIS = (0.1, 0.25, 0.5, 0.75, 0.9)


def build(rng, **kwargs):
    engine = HybridQuantileEngine(
        epsilon=0.02, kappa=3, block_elems=16, **kwargs
    )
    data = fill_engine(engine, rng, steps=8, batch=3000, live=3000)
    oracle = ExactQuantiles()
    oracle.update_batch(data)
    return engine, oracle


class TestBatchedQuantiles:
    def test_same_answers_as_individual(self, rng):
        engine, _ = build(rng)
        batch_results = engine.quantiles(PHIS)
        for phi, result in zip(PHIS, batch_results):
            assert result.value == engine.quantile(phi).value

    def test_batch_never_dearer_than_individual(self, rng):
        engine, _ = build(rng)
        batch_io = sum(r.disk_accesses for r in engine.quantiles(PHIS))
        individual_io = sum(
            engine.quantile(phi).disk_accesses for phi in PHIS
        )
        assert batch_io <= individual_io

    def test_overlapping_targets_share_blocks(self, rng):
        """Queries for nearby ranks reuse each other's blocks."""
        engine, _ = build(rng)
        nearby = (0.500, 0.5001, 0.5002, 0.5003)
        results = engine.quantiles(nearby)
        first = results[0].disk_accesses
        rest = sum(r.disk_accesses for r in results[1:])
        assert rest < first  # later searches ride the shared cache

    def test_batch_accuracy(self, rng):
        engine, oracle = build(rng)
        for result in engine.quantiles(PHIS):
            high = oracle.rank(result.value)
            low = oracle.rank_strict(result.value) + 1
            err = max(0, low - result.target_rank, result.target_rank - high)
            assert err <= 1.5 * 0.02 * engine.m_stream + 2

    def test_batch_window(self, rng):
        engine, _ = build(rng)
        window = engine.available_window_sizes()[0]
        results = engine.quantiles((0.5,), window_steps=window)
        assert results[0].window_steps == window


class TestParallelLatency:
    def test_parallel_never_slower_than_serial(self, rng):
        engine, _ = build(rng)
        result = engine.quantile(0.5)
        assert result.parallel_sim_seconds <= result.sim_seconds + 1e-12

    def test_parallel_positive_when_disk_touched(self, rng):
        engine, _ = build(rng)
        result = engine.quantile(0.5)
        if result.disk_accesses > 0:
            assert result.parallel_sim_seconds > 0

    def test_quick_mode_has_zero_parallel_cost(self, rng):
        engine, _ = build(rng)
        assert engine.quantile(0.5, mode="quick").parallel_sim_seconds == 0

    def test_parallel_speedup_with_many_partitions(self):
        """With several partitions the critical path is much shorter
        than the serial sum."""
        engine = HybridQuantileEngine(epsilon=0.02, kappa=12, block_elems=16)
        rng = np.random.default_rng(31)
        for _ in range(12):  # 12 level-0 partitions, no merges yet
            engine.stream_update_batch(rng.integers(0, 10**6, 3000))
            engine.end_time_step()
        engine.stream_update_batch(rng.integers(0, 10**6, 3000))
        result = engine.quantile(0.5)
        serial = result.disk_accesses
        parallel_blocks = result.parallel_sim_seconds / (
            engine.disk.latency.seconds_per_random_block
        )
        assert parallel_blocks <= serial / 2


class TestBatchedQueryTiming:
    def test_wall_seconds_is_per_query_not_cumulative(self, rng):
        """Each result reports its own wall time, so the sum over the
        batch cannot exceed the whole pass's elapsed time."""
        import time

        engine, _ = build(rng)
        started = time.perf_counter()
        results = engine.quantiles(PHIS)
        elapsed = time.perf_counter() - started
        assert sum(r.wall_seconds for r in results) <= elapsed
        assert all(r.wall_seconds >= 0.0 for r in results)

    def test_sim_seconds_attributed_once_on_last(self, rng):
        engine, _ = build(rng)
        results = engine.quantiles(PHIS)
        assert all(r.sim_seconds == 0.0 for r in results[:-1])
        assert results[-1].sim_seconds > 0.0

    def test_empty_phi_list(self, rng):
        engine, _ = build(rng)
        assert engine.quantiles([]) == []
