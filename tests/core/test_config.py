"""Tests for EngineConfig parameter derivation (Algorithm 1)."""

import pytest

from repro.core import EngineConfig


class TestEngineConfig:
    def test_algorithm1_derivation(self):
        config = EngineConfig(epsilon=0.5)
        assert config.epsilon1 == pytest.approx(0.25)
        assert config.epsilon2 == pytest.approx(0.125)
        assert config.beta1 == 5   # ceil(1/0.25) + 1
        assert config.beta2 == 9   # ceil(1/0.125) + 1

    def test_small_epsilon(self):
        config = EngineConfig(epsilon=0.001)
        assert config.beta1 == 2001
        assert config.beta2 == 4001

    def test_overridden_split(self):
        config = EngineConfig(epsilon=0.1, eps1=0.2, eps2=0.01)
        assert config.epsilon1 == 0.2
        assert config.epsilon2 == 0.01
        assert config.query_epsilon == pytest.approx(0.04)

    def test_query_epsilon_default(self):
        assert EngineConfig(epsilon=0.2).query_epsilon == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            EngineConfig(epsilon=1.5)
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, kappa=1)
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, block_elems=0)
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, eps1=0.0)
        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, eps2=2.0)

    def test_frozen(self):
        config = EngineConfig(epsilon=0.1)
        with pytest.raises(AttributeError):
            config.epsilon = 0.2
