"""End-to-end tests for the hybrid quantile engine.

The headline guarantee (Theorem 2): a rank-r query returns an element
whose rank in T is within O(eps * m) of r, where m is the *stream*
size — independent of how much historical data has accumulated.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, ExactQuantiles, HybridQuantileEngine

from ..conftest import fill_engine


def interval_error(oracle, value, target):
    high = oracle.rank(value)
    low = oracle.rank_strict(value) + 1
    return max(0, low - target, target - high)


def run_experiment(engine, rng, steps=5, batch=1500, live=1500, **kw):
    data = fill_engine(engine, rng, steps=steps, batch=batch, live=live, **kw)
    oracle = ExactQuantiles()
    oracle.update_batch(data)
    return oracle


class TestAccurateGuarantee:
    def test_error_bounded_by_eps_m(self, rng):
        epsilon = 0.05
        engine = HybridQuantileEngine(epsilon=epsilon, kappa=3, block_elems=16)
        oracle = run_experiment(engine, rng)
        m = engine.m_stream
        for phi in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
            result = engine.quantile(phi)
            err = interval_error(oracle, result.value, result.target_rank)
            assert err <= 1.5 * epsilon * m + 2, (phi, err, epsilon * m)

    def test_error_independent_of_history_size(self, rng):
        """More history must not worsen absolute error (Lemma 5)."""
        epsilon = 0.05
        errors = {}
        for steps in (3, 12):
            engine = HybridQuantileEngine(
                epsilon=epsilon, kappa=3, block_elems=16
            )
            oracle = run_experiment(engine, rng, steps=steps)
            result = engine.quantile(0.5)
            errors[steps] = interval_error(
                oracle, result.value, result.target_rank
            )
            assert errors[steps] <= 1.5 * epsilon * engine.m_stream + 2

    def test_returns_actual_element(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        oracle = run_experiment(engine, rng)
        for phi in (0.1, 0.5, 0.9):
            result = engine.quantile(phi)
            assert oracle.rank(result.value) > oracle.rank_strict(result.value)

    def test_query_without_stream(self, rng):
        """Queries must work between end_time_step and new arrivals."""
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        chunks = []
        for _ in range(4):
            data = rng.integers(0, 10**6, 1000)
            chunks.append(data)
            engine.stream_update_batch(data)
            engine.end_time_step()
        oracle = ExactQuantiles()
        oracle.update_batch(np.concatenate(chunks))
        result = engine.quantile(0.5)
        # pure historical: only search slack remains
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 2

    def test_query_stream_only(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        data = rng.integers(0, 10**6, 3000)
        engine.stream_update_batch(data)
        oracle = ExactQuantiles()
        oracle.update_batch(data)
        result = engine.quantile(0.5)
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 1.5 * 0.05 * 3000 + 2

    def test_duplicate_heavy_data(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        oracle = run_experiment(engine, rng, low=0, high=50)
        result = engine.quantile(0.5)
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 1.5 * 0.05 * engine.m_stream + 2

    def test_extreme_ranks(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        oracle = run_experiment(engine, rng)
        for rank in (1, engine.n_total):
            result = engine.query_rank(rank)
            err = interval_error(oracle, result.value, rank)
            assert err <= 1.5 * 0.05 * engine.m_stream + 2


class TestQuickResponse:
    def test_error_bounded_by_eps_n(self, rng):
        epsilon = 0.05
        engine = HybridQuantileEngine(epsilon=epsilon, kappa=3, block_elems=16)
        oracle = run_experiment(engine, rng)
        for phi in (0.1, 0.5, 0.9):
            result = engine.quantile(phi, mode="quick")
            err = interval_error(oracle, result.value, result.target_rank)
            assert err <= 2 * epsilon * engine.n_total + 2

    def test_quick_makes_no_disk_accesses(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        run_experiment(engine, rng)
        result = engine.quantile(0.5, mode="quick")
        assert result.disk_accesses == 0

    def test_accurate_beats_quick_on_average(self, rng):
        epsilon = 0.02
        engine = HybridQuantileEngine(epsilon=epsilon, kappa=3, block_elems=16)
        oracle = run_experiment(engine, rng, steps=8, batch=3000, live=3000)
        quick_err = 0
        accurate_err = 0
        for phi in (0.1, 0.25, 0.5, 0.75, 0.9):
            quick = engine.quantile(phi, mode="quick")
            accurate = engine.quantile(phi, mode="accurate")
            quick_err += interval_error(oracle, quick.value, quick.target_rank)
            accurate_err += interval_error(
                oracle, accurate.value, accurate.target_rank
            )
        assert accurate_err <= quick_err


class TestQueryMechanics:
    def test_invalid_mode_rejected(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05)
        engine.stream_update_batch(rng.integers(0, 100, 100))
        with pytest.raises(ValueError):
            engine.query_rank(1, mode="warp")

    def test_needs_epsilon_or_config(self):
        with pytest.raises(ValueError):
            HybridQuantileEngine()

    def test_config_object_accepted(self):
        config = EngineConfig(epsilon=0.1, kappa=5, block_elems=8)
        engine = HybridQuantileEngine(config=config)
        assert engine.config.kappa == 5

    def test_disk_accesses_counted(self, rng):
        engine = HybridQuantileEngine(epsilon=0.02, kappa=3, block_elems=16)
        run_experiment(engine, rng, steps=8, batch=3000)
        result = engine.quantile(0.5)
        assert result.disk_accesses > 0
        assert result.sim_seconds > 0

    def test_probe_budget_truncates(self, rng):
        config = EngineConfig(
            epsilon=0.005, kappa=3, block_elems=4, probe_budget=3
        )
        engine = HybridQuantileEngine(config=config)
        run_experiment(engine, rng, steps=8, batch=3000)
        result = engine.quantile(0.5)
        assert result.disk_accesses <= 3 + 16  # final estimate may add blocks
        assert result.truncated or result.disk_accesses <= 3

    def test_block_cache_reduces_accesses(self, rng):
        results = {}
        for cached in (True, False):
            config = EngineConfig(
                epsilon=0.02, kappa=3, block_elems=16, block_cache=cached
            )
            engine = HybridQuantileEngine(config=config)
            inner_rng = np.random.default_rng(99)
            fill_engine(engine, inner_rng, steps=8, batch=3000, live=3000)
            results[cached] = engine.quantile(0.5).disk_accesses
        assert results[True] <= results[False]

    def test_stream_update_single_element(self):
        engine = HybridQuantileEngine(epsilon=0.1)
        for v in (5, 3, 8):
            engine.stream_update(v)
        assert engine.m_stream == 3
        # With eps*m < 1 the guarantee only pins the answer to within a
        # couple of ranks; any stream element qualifies here.
        assert engine.quantile(0.5).value in (3, 5, 8)


class TestStepReports:
    def test_plain_step_io_is_batch_blocks(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=10)
        engine.stream_update_batch(rng.integers(0, 100, 1000))
        report = engine.end_time_step()
        assert report.io_total == 100  # 1000 elems / 10 per block
        assert report.io_merge == 0
        assert not report.merged_levels

    def test_merge_step_reports_merge_io(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=2, block_elems=10)
        reports = []
        for _ in range(3):
            engine.stream_update_batch(rng.integers(0, 100, 1000))
            reports.append(engine.end_time_step())
        assert reports[2].merged_levels
        assert reports[2].io_merge == 400  # read 200 + write 200

    def test_stream_reset_after_step(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05)
        engine.stream_update_batch(rng.integers(0, 100, 500))
        assert engine.m_stream == 500
        engine.end_time_step()
        assert engine.m_stream == 0
        assert engine.n_historical == 500

    def test_cpu_seconds_reported(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05)
        engine.stream_update_batch(rng.integers(0, 100, 500))
        report = engine.end_time_step()
        assert set(report.cpu_seconds) == {"load", "sort", "merge", "summary"}
        assert all(v >= 0 for v in report.cpu_seconds.values())


class TestMemoryReport:
    def test_breakdown_positive(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        run_experiment(engine, rng)
        report = engine.memory_report()
        assert report.stream_sketch_words > 0
        assert report.historical_summary_words > 0
        assert report.total_words == (
            report.stream_words + report.historical_summary_words
        )
        assert report.total_megabytes > 0

    def test_memory_far_below_data_size(self, rng):
        engine = HybridQuantileEngine(epsilon=0.02, kappa=3, block_elems=16)
        run_experiment(engine, rng, steps=8, batch=5000, live=5000)
        report = engine.memory_report()
        assert report.total_words < engine.n_total / 4


class TestInvariants:
    def test_check_invariants_passes(self, rng):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        run_experiment(engine, rng, steps=11)
        engine.check_invariants()


class TestEngineProperty:
    @given(
        seed=st.integers(0, 10**6),
        steps=st.integers(1, 6),
        kappa=st.sampled_from([2, 3, 4]),
        phi=st.floats(0.01, 1.0),
        spread=st.sampled_from([10, 10**4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_guarantee_randomized(self, seed, steps, kappa, phi, spread):
        epsilon = 0.1
        engine = HybridQuantileEngine(
            epsilon=epsilon, kappa=kappa, block_elems=8
        )
        inner = np.random.default_rng(seed)
        chunks = []
        for _ in range(steps):
            data = inner.integers(0, spread, 400)
            chunks.append(data)
            engine.stream_update_batch(data)
            engine.end_time_step()
        live = inner.integers(0, spread, 400)
        chunks.append(live)
        engine.stream_update_batch(live)
        oracle = ExactQuantiles()
        oracle.update_batch(np.concatenate(chunks))
        result = engine.quantile(phi)
        err = interval_error(oracle, result.value, result.target_rank)
        assert err <= 1.5 * epsilon * engine.m_stream + 2
        engine.check_invariants()
