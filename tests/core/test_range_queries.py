"""Tests for arbitrary historical step-range queries."""

import numpy as np
import pytest

from repro import ExactQuantiles, HybridQuantileEngine
from repro.core.windows import RangeNotAlignedError


def build(rng, steps=7, batch=1000, kappa=2):
    engine = HybridQuantileEngine(epsilon=0.05, kappa=kappa, block_elems=16)
    step_data = []
    for _ in range(steps):
        data = rng.integers(0, 10**6, batch)
        step_data.append(data)
        engine.stream_update_batch(data)
        engine.end_time_step()
    engine.stream_update_batch(rng.integers(0, 10**6, batch))
    return engine, step_data


class TestRangeQueries:
    def test_aligned_range(self, rng):
        engine, step_data = build(rng)
        # kappa=2, 7 steps -> partitions (1-4), (5-6), (7)
        result = engine.quantile(0.5, step_range=(5, 6))
        oracle = ExactQuantiles()
        oracle.update_batch(np.concatenate(step_data[4:6]))
        assert result.total_size == oracle.n
        high = oracle.rank(result.value)
        low = oracle.rank_strict(result.value) + 1
        err = max(0, low - result.target_rank, result.target_rank - high)
        assert err <= 2  # no stream: only search slack remains

    def test_range_excludes_stream(self, rng):
        engine, step_data = build(rng)
        result = engine.quantile(0.5, step_range=(1, 7))
        assert result.total_size == sum(len(d) for d in step_data)

    def test_unaligned_range_raises(self, rng):
        engine, _ = build(rng)
        with pytest.raises(RangeNotAlignedError):
            engine.quantile(0.5, step_range=(2, 6))
        # (5, 5) splits the merged partition (5-6)
        with pytest.raises(RangeNotAlignedError):
            engine.quantile(0.5, step_range=(5, 5))

    def test_invalid_range_raises(self, rng):
        engine, _ = build(rng)
        with pytest.raises(RangeNotAlignedError):
            engine.quantile(0.5, step_range=(6, 5))
        with pytest.raises(RangeNotAlignedError):
            engine.quantile(0.5, step_range=(0, 4))

    def test_range_and_window_mutually_exclusive(self, rng):
        engine, _ = build(rng)
        with pytest.raises(ValueError):
            engine.query_rank(1, window_steps=1, step_range=(5, 6))

    def test_range_matches_distinct_distribution(self, rng):
        """Query an old interval whose distribution differs."""
        engine = HybridQuantileEngine(epsilon=0.05, kappa=2, block_elems=16)
        for _ in range(4):  # steps 1-4: low values
            engine.stream_update_batch(rng.integers(0, 100, 1000))
            engine.end_time_step()
        for _ in range(3):  # steps 5-7: high values
            engine.stream_update_batch(rng.integers(10**6, 2 * 10**6, 1000))
            engine.end_time_step()
        old = engine.quantile(0.5, step_range=(1, 4))
        assert old.value < 100
        recent = engine.quantile(0.5, step_range=(5, 6))
        assert recent.value >= 10**6
