"""Tests for whole-engine checkpoints."""

import numpy as np
import pytest

from repro import ExactQuantiles, HybridQuantileEngine
from repro.persistence import PersistenceError, load_engine, save_engine


def build_engine(seed=0, steps=6, batch=1500, live=800):
    engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
    rng = np.random.default_rng(seed)
    chunks = []
    for _ in range(steps):
        data = rng.integers(0, 10**6, batch)
        chunks.append(data)
        engine.stream_update_batch(data)
        engine.end_time_step()
    live_data = rng.integers(0, 10**6, live)
    chunks.append(live_data)
    engine.stream_update_batch(live_data)
    return engine, np.concatenate(chunks)


class TestCheckpoint:
    def test_identical_query_answers(self, tmp_path):
        engine, _ = build_engine()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path)
        for phi in (0.1, 0.5, 0.9):
            for mode in ("quick", "accurate"):
                assert (
                    restored.quantile(phi, mode=mode).value
                    == engine.quantile(phi, mode=mode).value
                )

    def test_state_counters(self, tmp_path):
        engine, _ = build_engine()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path)
        assert restored.n_historical == engine.n_historical
        assert restored.m_stream == engine.m_stream
        assert restored.steps_loaded == engine.steps_loaded
        assert restored.config == engine.config
        restored.check_invariants()

    def test_restored_engine_continues(self, tmp_path):
        engine, data = build_engine()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path)
        restored.end_time_step()  # archive the restored live buffer
        extra = np.random.default_rng(5).integers(0, 10**6, 1000)
        restored.stream_update_batch(extra)
        oracle = ExactQuantiles()
        oracle.update_batch(np.concatenate([data, extra]))
        result = restored.quantile(0.5)
        high = oracle.rank(result.value)
        low = oracle.rank_strict(result.value) + 1
        err = max(0, low - result.target_rank, result.target_rank - high)
        assert err <= 1.5 * 0.05 * restored.m_stream + 2

    def test_empty_stream_checkpoint(self, tmp_path):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        engine.stream_update_batch(np.arange(1000))
        engine.end_time_step()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path)
        assert restored.m_stream == 0
        assert restored.quantile(0.5).value == engine.quantile(0.5).value

    def test_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_engine(tmp_path / "nope")

    def test_tampered_buffer_detected(self, tmp_path):
        engine, _ = build_engine()
        save_engine(engine, tmp_path)
        np.save(tmp_path / "stream_buffer.npy", np.arange(3))
        with pytest.raises(PersistenceError):
            load_engine(tmp_path)


class TestCompactionPolicyRestore:
    def test_leveled_engine_restores_leveled_store(self, tmp_path):
        from repro import EngineConfig
        from repro.warehouse import LeveledCompactionStore

        config = EngineConfig(
            epsilon=0.05, kappa=3, block_elems=16, compaction="leveled"
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(3)
        for _ in range(7):
            engine.stream_update_batch(rng.integers(0, 10**6, 800))
            engine.end_time_step()
        save_engine(engine, tmp_path)
        restored = load_engine(tmp_path)
        assert isinstance(restored.store, LeveledCompactionStore)
        # continued ingestion obeys the leveled invariant
        for _ in range(5):
            restored.stream_update_batch(rng.integers(0, 10**6, 800))
            restored.end_time_step()
        restored.check_invariants()
