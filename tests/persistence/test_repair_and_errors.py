"""Error paths and repair mode of the persistence layer.

Covers the failure taxonomy end to end: truncated partition files,
salvageable vs unsalvageable checksum mismatches, the stream
sketch/buffer consistency check in ``load_engine``, and the guard
against replacing a directory that is not a checkpoint.
"""

import json

import numpy as np
import pytest

from repro import HybridQuantileEngine
from repro.persistence import (
    PersistenceError,
    load_engine,
    load_store,
    save_engine,
    save_store,
)
from repro.persistence.checkpoint import BUFFER_FILE, SKETCH_FILE
from repro.persistence.serialization import dump_gk, load_gk
from repro.persistence.warehouse_store import MANIFEST_NAME
from repro.storage import SimulatedDisk
from repro.warehouse import LeveledStore


def build_store(steps=5, kappa=2, batch=400, seed=0):
    disk = SimulatedDisk(block_elems=16)
    store = LeveledStore(disk, kappa=kappa)
    rng = np.random.default_rng(seed)
    for step in range(1, steps + 1):
        store.add_batch(rng.integers(0, 10**6, batch), step=step)
    return disk, store


def build_engine(seed=0, steps=4, batch=600, live=200):
    engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        engine.stream_update_batch(rng.integers(0, 10**6, batch))
        engine.end_time_step()
    engine.stream_update_batch(rng.integers(0, 10**6, live))
    return engine


class TestTruncatedPartition:
    def test_truncated_file_detected(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = sorted(tmp_path.glob("part-*.npy"))[0]
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistenceError, match="checksum"):
            load_store(tmp_path, SimulatedDisk(block_elems=16))

    def test_truncated_file_unrepairable(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = sorted(tmp_path.glob("part-*.npy"))[0]
        blob = victim.read_bytes()
        victim.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(PersistenceError, match="unrepairable"):
            load_store(tmp_path, SimulatedDisk(block_elems=16), repair=True)


class TestRepairMode:
    def rewrite_valid(self, directory):
        """Rewrite one partition with different-but-valid sorted data
        of the same length, leaving the manifest checksum stale."""
        victim = sorted(directory.glob("part-*.npy"))[0]
        data = np.load(victim)
        np.save(victim, np.sort(data + 1))
        return victim

    def test_salvages_structurally_valid_run(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        self.rewrite_valid(tmp_path)
        restored = load_store(
            tmp_path, SimulatedDisk(block_elems=16), repair=True
        )
        assert restored.steps_loaded == store.steps_loaded

    def test_repair_rewrites_manifest(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = self.rewrite_valid(tmp_path)
        load_store(tmp_path, SimulatedDisk(block_elems=16), repair=True)
        # Second load without repair is clean: checksums were fixed.
        load_store(tmp_path, SimulatedDisk(block_elems=16))
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        entries = [e for lvl in manifest["levels"] for e in lvl]
        assert any(e["file"] == victim.name for e in entries)

    def test_unsorted_content_unrepairable(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = sorted(tmp_path.glob("part-*.npy"))[0]
        data = np.load(victim)
        data[0], data[-1] = data[-1], data[0] + 10**7  # break the order
        np.save(victim, data)
        with pytest.raises(PersistenceError, match="unrepairable"):
            load_store(tmp_path, SimulatedDisk(block_elems=16), repair=True)

    def test_wrong_length_unrepairable(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = sorted(tmp_path.glob("part-*.npy"))[0]
        np.save(victim, np.load(victim)[:-3])
        with pytest.raises(PersistenceError, match="unrepairable"):
            load_store(tmp_path, SimulatedDisk(block_elems=16), repair=True)

    def test_repair_without_damage_is_a_noop(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        before = (tmp_path / MANIFEST_NAME).read_bytes()
        load_store(tmp_path, SimulatedDisk(block_elems=16), repair=True)
        assert (tmp_path / MANIFEST_NAME).read_bytes() == before


class TestEngineStateConsistency:
    def test_sketch_buffer_disagreement_detected(self, tmp_path):
        """The gk.n != m cross-check: a sketch that counted a different
        number of live elements than the buffer holds must not load."""
        engine = build_engine()
        save_engine(engine, tmp_path / "ckpt")
        sketch_path = tmp_path / "ckpt" / SKETCH_FILE
        sketch = load_gk(sketch_path.read_bytes())
        sketch.update(123456)  # sketch now claims one extra element
        sketch_path.write_bytes(dump_gk(sketch))
        with pytest.raises(PersistenceError, match="sketch count disagrees"):
            load_engine(tmp_path / "ckpt")

    def test_buffer_size_disagreement_detected(self, tmp_path):
        engine = build_engine()
        save_engine(engine, tmp_path / "ckpt")
        buffer_path = tmp_path / "ckpt" / BUFFER_FILE
        buffer = np.load(buffer_path)
        np.save(buffer_path, buffer[:-5])
        with pytest.raises(PersistenceError, match="buffer size disagrees"):
            load_engine(tmp_path / "ckpt")

    def test_repair_flag_reaches_the_warehouse(self, tmp_path):
        engine = build_engine()
        save_engine(engine, tmp_path / "ckpt")
        victim = sorted((tmp_path / "ckpt" / "warehouse").glob("part-*.npy"))[0]
        np.save(victim, np.sort(np.load(victim) + 1))
        with pytest.raises(PersistenceError, match="checksum"):
            load_engine(tmp_path / "ckpt")
        restored = load_engine(tmp_path / "ckpt", repair=True)
        assert restored.steps_loaded == engine.steps_loaded
        restored.close()
        engine.close()


class TestAtomicSaveGuards:
    def test_refuses_to_replace_non_checkpoint_directory(self, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "notes.txt").write_text("do not delete")
        engine = build_engine(steps=1, live=0)
        with pytest.raises(PersistenceError, match="not .*checkpoint"):
            save_engine(engine, target)
        assert (target / "notes.txt").read_text() == "do not delete"
        engine.close()

    def test_empty_existing_directory_is_fine(self, tmp_path):
        target = tmp_path / "fresh"
        target.mkdir()
        engine = build_engine(steps=1, live=0)
        save_engine(engine, target)
        load_engine(target).close()
        engine.close()

    def test_resave_reuses_unchanged_partitions(self, tmp_path):
        # kappa=3 and 2+1 steps: the third batch joins level 0 without
        # a merge, so the first two partition files keep their names.
        engine = build_engine(steps=2, live=0)
        target = tmp_path / "ckpt"
        save_engine(engine, target)
        warehouse = target / "warehouse"
        before = {p.name: p.stat().st_ino for p in warehouse.glob("part-*.npy")}
        rng = np.random.default_rng(99)
        engine.stream_update_batch(rng.integers(0, 10**6, 600))
        engine.end_time_step()
        save_engine(engine, target)
        after = {p.name: p.stat().st_ino for p in warehouse.glob("part-*.npy")}
        shared = [n for n in after if before.get(n) == after[n]]
        assert shared  # at least one partition survived as a hard link
        load_engine(target).close()
        engine.close()
