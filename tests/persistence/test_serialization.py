"""Tests for sketch serialization round-trips and failure detection."""

import numpy as np
import pytest

from repro.persistence import (
    SerializationError,
    dump_gk,
    dump_qdigest,
    load_gk,
    load_qdigest,
)
from repro.sketches import GKSketch, QDigestSketch


def filled_gk(eps=0.01, n=20_000, seed=0):
    sketch = GKSketch(eps)
    sketch.update_batch(np.random.default_rng(seed).integers(0, 10**9, n))
    return sketch


def filled_qdigest(eps=0.02, n=20_000, seed=1):
    sketch = QDigestSketch(eps, universe_log2=20)
    sketch.update_many(np.random.default_rng(seed).integers(0, 2**20, n))
    return sketch


class TestGKRoundTrip:
    def test_identical_answers(self):
        original = filled_gk()
        restored = load_gk(dump_gk(original))
        assert restored.n == original.n
        assert restored.epsilon == original.epsilon
        for rank in (1, 5000, 10_000, 15_000, 20_000):
            assert restored.query_rank(rank) == original.query_rank(rank)

    def test_restored_sketch_keeps_ingesting(self):
        original = filled_gk()
        restored = load_gk(dump_gk(original))
        extra = np.random.default_rng(9).integers(0, 10**9, 5000)
        original.update_batch(extra)
        restored.update_batch(extra)
        assert restored.n == original.n
        assert restored.query_rank(12_000) == original.query_rank(12_000)

    def test_empty_sketch(self):
        restored = load_gk(dump_gk(GKSketch(0.1)))
        assert restored.n == 0

    def test_rejects_garbage(self):
        with pytest.raises(SerializationError):
            load_gk(b"not a sketch at all")

    def test_rejects_wrong_format(self):
        payload = dump_qdigest(filled_qdigest())
        with pytest.raises(SerializationError):
            load_gk(payload)


class TestQDigestRoundTrip:
    def test_identical_answers(self):
        original = filled_qdigest()
        restored = load_qdigest(dump_qdigest(original))
        assert restored.n == original.n
        for rank in (1, 5000, 10_000, 20_000):
            assert restored.query_rank(rank) == original.query_rank(rank)

    def test_rejects_wrong_format(self):
        payload = dump_gk(filled_gk())
        with pytest.raises(SerializationError):
            load_qdigest(payload)

    def test_rejects_garbage(self):
        with pytest.raises(SerializationError):
            load_qdigest(b"\x00" * 64)
