"""Tests for warehouse persistence: round-trip, crashes, corruption."""

import json

import numpy as np
import pytest

from repro.persistence import PersistenceError, load_store, save_store
from repro.persistence.warehouse_store import MANIFEST_NAME
from repro.storage import SimulatedDisk
from repro.warehouse import LeveledStore


def build_store(steps=7, kappa=2, batch=500, seed=0):
    disk = SimulatedDisk(block_elems=16)
    store = LeveledStore(disk, kappa=kappa)
    rng = np.random.default_rng(seed)
    for step in range(1, steps + 1):
        store.add_batch(rng.integers(0, 10**6, batch), step=step)
    return disk, store


class TestRoundTrip:
    def test_layout_preserved(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        restored = load_store(tmp_path, SimulatedDisk(block_elems=16))
        assert restored.kappa == store.kappa
        assert restored.steps_loaded == store.steps_loaded
        original = [
            (p.level, p.start_step, p.end_step, len(p))
            for p in store.partitions()
        ]
        loaded = [
            (p.level, p.start_step, p.end_step, len(p))
            for p in restored.partitions()
        ]
        assert loaded == original

    def test_data_preserved(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        restored = load_store(tmp_path, SimulatedDisk(block_elems=16))
        for a, b in zip(store.partitions(), restored.partitions()):
            np.testing.assert_array_equal(a.run.values, b.run.values)

    def test_restored_store_keeps_ingesting(self, tmp_path):
        _, store = build_store(steps=7, kappa=2)
        save_store(store, tmp_path)
        restored = load_store(tmp_path, SimulatedDisk(block_elems=16))
        restored.add_batch(np.arange(500), step=8)
        restored.check_invariant()
        assert restored.steps_loaded == 8

    def test_incremental_save_reuses_files(self, tmp_path):
        disk, store = build_store(steps=3, kappa=5)
        save_store(store, tmp_path)
        first = {p.name: p.stat().st_mtime_ns
                 for p in tmp_path.glob("part-*.npy")}
        store.add_batch(np.arange(500), step=4)
        save_store(store, tmp_path)
        second = {p.name: p.stat().st_mtime_ns
                  for p in tmp_path.glob("part-*.npy")}
        for name, mtime in first.items():
            assert second[name] == mtime  # untouched partitions not rewritten
        assert len(second) == len(first) + 1

    def test_stale_files_removed_after_merge(self, tmp_path):
        disk, store = build_store(steps=2, kappa=2)
        save_store(store, tmp_path)
        before = {p.name for p in tmp_path.glob("part-*.npy")}
        store.add_batch(np.arange(500), step=3)  # merges (1,2) upward
        save_store(store, tmp_path)
        after = {p.name for p in tmp_path.glob("part-*.npy")}
        assert len(after) == store.partition_count()
        assert before - after  # the merged-away level-0 files are gone

    def test_summary_builder_applied_on_load(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        restored = load_store(
            tmp_path,
            SimulatedDisk(block_elems=16),
            summary_builder=lambda p: ("summary", len(p)),
        )
        for partition in restored.partitions():
            assert partition.summary == ("summary", len(partition))

    def test_load_charges_recovery_scan(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        disk = SimulatedDisk(block_elems=16)
        load_store(tmp_path, disk)
        expected_blocks = sum(
            disk.blocks_for(len(p)) for p in store.partitions()
        )
        assert disk.stats.counters.sequential_reads == expected_blocks


class TestFailureInjection:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(PersistenceError, match="no manifest"):
            load_store(tmp_path, SimulatedDisk())

    def test_garbled_manifest(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        (tmp_path / MANIFEST_NAME).write_text("{oops")
        with pytest.raises(PersistenceError, match="garbled"):
            load_store(tmp_path, SimulatedDisk())

    def test_wrong_format(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        manifest["format"] = "something-else"
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="format"):
            load_store(tmp_path, SimulatedDisk())

    def test_kappa_mismatch(self, tmp_path):
        _, store = build_store(kappa=2)
        save_store(store, tmp_path)
        with pytest.raises(PersistenceError, match="kappa"):
            load_store(tmp_path, SimulatedDisk(), kappa=5)

    def test_missing_partition_file(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        next(iter(tmp_path.glob("part-*.npy"))).unlink()
        with pytest.raises(PersistenceError, match="missing partition"):
            load_store(tmp_path, SimulatedDisk())

    def test_corrupted_partition_detected(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = next(iter(tmp_path.glob("part-*.npy")))
        blob = bytearray(victim.read_bytes())
        blob[-5] ^= 0xFF  # flip bits inside the data section
        victim.write_bytes(bytes(blob))
        with pytest.raises(PersistenceError, match="checksum"):
            load_store(tmp_path, SimulatedDisk())

    def test_corruption_ignored_without_verification(self, tmp_path):
        _, store = build_store()
        save_store(store, tmp_path)
        victim = sorted(tmp_path.glob("part-*.npy"))[-1]
        blob = bytearray(victim.read_bytes())
        blob[-5] ^= 0x01
        victim.write_bytes(bytes(blob))
        # With checksums off the loader only catches structural damage;
        # a bit flip inside values loads (possibly wrong) data. The
        # option exists for huge warehouses where scanning is too slow.
        try:
            load_store(tmp_path, SimulatedDisk(), verify_checksums=False)
        except (PersistenceError, ValueError):
            # A flipped bit may still break the sort invariant, which
            # the SortedRun constructor reports.
            pass

    def test_crash_during_save_keeps_old_manifest(self, tmp_path):
        """The temp-then-rename protocol: a leftover .tmp is harmless."""
        _, store = build_store()
        save_store(store, tmp_path)
        (tmp_path / (MANIFEST_NAME + ".tmp")).write_text("partial garbage")
        restored = load_store(tmp_path, SimulatedDisk(block_elems=16))
        assert restored.steps_loaded == store.steps_loaded
