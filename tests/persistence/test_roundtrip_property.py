"""Property test: warehouse persistence round-trips any store state."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence import load_store, save_store
from repro.storage import SimulatedDisk
from repro.warehouse import LeveledCompactionStore, LeveledStore


@given(
    kappa=st.integers(2, 4),
    steps=st.integers(1, 25),
    seed=st.integers(0, 10**6),
    leveled=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_roundtrip_any_schedule(tmp_path_factory, kappa, steps, seed,
                                leveled):
    directory = tmp_path_factory.mktemp("wh")
    disk = SimulatedDisk(block_elems=8)
    store_cls = LeveledCompactionStore if leveled else LeveledStore
    store = store_cls(disk, kappa=kappa)
    rng = np.random.default_rng(seed)
    for step in range(1, steps + 1):
        store.add_batch(rng.integers(0, 1000, 37), step=step)
    save_store(store, directory)
    restored = load_store(
        directory, SimulatedDisk(block_elems=8), store_cls=store_cls
    )
    restored.check_invariant()
    assert restored.steps_loaded == store.steps_loaded
    original = [
        (p.level, p.start_step, p.end_step) for p in store.partitions()
    ]
    loaded = [
        (p.level, p.start_step, p.end_step) for p in restored.partitions()
    ]
    assert loaded == original
    all_original = np.sort(
        np.concatenate([p.run.values for p in store.partitions()])
    )
    all_loaded = np.sort(
        np.concatenate([p.run.values for p in restored.partitions()])
    )
    np.testing.assert_array_equal(all_loaded, all_original)
