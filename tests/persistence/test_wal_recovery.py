"""Crash-recovery equivalence: checkpoint + WAL roll-forward.

The durability contract under test: once ``stream_update_many`` /
``end_time_step`` returns (the ack), a crash loses nothing — recovery
from the latest checkpoint plus WAL replay produces an engine whose
answers are bit-identical to an uncrashed engine that ingested the same
feed serially (same batch boundaries, queries only at the end — the
regime the lazy-absorption contract guarantees bit-identity for).
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.ingest.wal import WriteAheadLog, scan_wal
from repro.persistence import load_engine, save_engine

PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)


def make_feeds(seed, steps=5, size=2000):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 1_000_000, size=size).astype(np.int64)
        for _ in range(steps)
    ]


def run_uncrashed(config, feeds, tail):
    engine = HybridQuantileEngine(config=config)
    for feed in feeds:
        engine.stream_update_many(feed)
        engine.end_time_step()
    engine.stream_update_many(tail)
    answers = [engine.quantile(phi).value for phi in PHIS]
    engine.close()
    return answers


def crash(engine):
    """Abandon the engine as a crash would: no close, no final flush.

    Every acked append is already durable (flushed and fsynced by the
    WAL before the ack), so dropping the writer mid-flight models a
    process kill faithfully; only the OS-held file handle is released.
    """
    wal = engine.detach_wal()
    if wal._file is not None:
        wal._file.close()


@pytest.mark.parametrize("sketch_backend", ["gk", "kll"])
def test_crash_after_acked_batches_loses_nothing(tmp_path, sketch_backend):
    config = EngineConfig(
        epsilon=0.02, block_elems=100, sketch_backend=sketch_backend
    )
    feeds = make_feeds(seed=101)
    tail = make_feeds(seed=202, steps=1, size=777)[0]

    engine = HybridQuantileEngine(config=config)
    engine.attach_wal(WriteAheadLog(tmp_path / "wal"))
    for feed in feeds[:2]:
        engine.stream_update_many(feed)
        engine.end_time_step()
    save_engine(engine, tmp_path / "ckpt")
    # Acked after the checkpoint: two sealed steps plus a buffered tail.
    for feed in feeds[2:]:
        engine.stream_update_many(feed)
        engine.end_time_step()
    engine.stream_update_many(tail)
    crash(engine)

    recovered = load_engine(tmp_path / "ckpt", wal_dir=tmp_path / "wal")
    assert recovered.steps_sealed == len(feeds)
    assert recovered.n_total == sum(len(f) for f in feeds) + len(tail)
    got = [recovered.quantile(phi).value for phi in PHIS]
    assert got == run_uncrashed(config, feeds, tail)
    recovered.close()


def test_recovered_engine_keeps_logging(tmp_path):
    """load_engine(wal_dir=...) reattaches a live writer after replay."""
    config = EngineConfig(epsilon=0.02, block_elems=100)
    feeds = make_feeds(seed=303, steps=3)
    engine = HybridQuantileEngine(config=config)
    engine.attach_wal(WriteAheadLog(tmp_path / "wal"))
    engine.stream_update_many(feeds[0])
    engine.end_time_step()
    save_engine(engine, tmp_path / "ckpt")
    engine.stream_update_many(feeds[1])
    crash(engine)

    recovered = load_engine(tmp_path / "ckpt", wal_dir=tmp_path / "wal")
    watermark = recovered._wal.last_lsn
    recovered.stream_update_many(feeds[2])
    assert recovered._wal.last_lsn == watermark + 1
    recovered.close()
    # A second crash-recovery sees the new batch too.
    again = load_engine(tmp_path / "ckpt", wal_dir=tmp_path / "wal")
    assert again.n_total == sum(len(f) for f in feeds)
    again.close()


def test_checkpoint_truncates_and_watermarks(tmp_path):
    """save_engine stores the WAL watermark and GCs covered segments."""
    config = EngineConfig(epsilon=0.02, block_elems=100)
    engine = HybridQuantileEngine(config=config)
    # Tiny segments so every record gets its own file: truncation after
    # the checkpoint must actually delete the covered ones.
    engine.attach_wal(WriteAheadLog(tmp_path / "wal", segment_bytes=64))
    for feed in make_feeds(seed=404, steps=3, size=50):
        engine.stream_update_many(feed)
        engine.end_time_step()
    lsn_at_checkpoint = engine._wal.last_lsn
    save_engine(engine, tmp_path / "ckpt")
    import json

    state = json.loads((tmp_path / "ckpt" / "engine.json").read_text())
    assert state["wal_lsn"] == lsn_at_checkpoint
    assert scan_wal(tmp_path / "wal").records == ()
    # Nothing pending: recovery replays zero records.
    engine.stream_update_many(np.asarray([1, 2, 3], dtype=np.int64))
    crash(engine)
    recovered = load_engine(tmp_path / "ckpt", wal_dir=tmp_path / "wal")
    assert recovered.m_stream == 3
    recovered.close()


def test_recovery_without_wal_dir_is_checkpoint_only(tmp_path):
    config = EngineConfig(epsilon=0.02, block_elems=100)
    feeds = make_feeds(seed=505, steps=2)
    engine = HybridQuantileEngine(config=config)
    engine.attach_wal(WriteAheadLog(tmp_path / "wal"))
    engine.stream_update_many(feeds[0])
    engine.end_time_step()
    save_engine(engine, tmp_path / "ckpt")
    engine.stream_update_many(feeds[1])
    crash(engine)
    plain = load_engine(tmp_path / "ckpt")
    assert plain.n_total == len(feeds[0])  # post-checkpoint acks not seen
    plain.close()
