"""Tests for the drifting-distribution workload."""

import numpy as np
import pytest

from repro.workloads import DriftWorkload


class TestDriftWorkload:
    def test_mean_moves(self):
        w = DriftWorkload(seed=0, start_mean=1e6, drift_per_batch=1e5,
                          stddev=1e3)
        first = w.generate(5000).mean()
        for _ in range(9):
            w.generate(5000)
        late = w.generate(5000).mean()
        assert late - first > 8e5

    def test_jump_regime(self):
        w = DriftWorkload(seed=0, start_mean=1e6, drift_per_batch=0,
                          stddev=1e3, jump_at=2, jump_to=5e6)
        before = w.generate(2000).mean()
        w.generate(2000)
        after = w.generate(2000).mean()
        assert abs(before - 1e6) < 1e4
        assert abs(after - 5e6) < 1e4

    def test_jump_validation(self):
        with pytest.raises(ValueError):
            DriftWorkload(jump_at=3)

    def test_reset_restores_schedule(self):
        w = DriftWorkload(seed=1)
        first = w.generate(1000)
        w.generate(1000)
        w.reset()
        np.testing.assert_array_equal(w.generate(1000), first)

    def test_windows_see_the_drift(self):
        """The feature this workload exists to demonstrate."""
        from repro import HybridQuantileEngine

        w = DriftWorkload(seed=2, start_mean=1e6, drift_per_batch=2e5,
                          stddev=5e4)
        engine = HybridQuantileEngine(epsilon=0.05, kappa=2, block_elems=16)
        for batch in w.batches(8, 2000):
            engine.stream_update_batch(batch)
            engine.end_time_step()
        engine.stream_update_batch(w.generate(2000))
        recent = engine.quantile(0.5, window_steps=1).value
        full = engine.quantile(0.5).value
        assert recent > full  # the window tracks the drifted present
