"""Tests for the file-replay workload."""

import numpy as np
import pytest

from repro.workloads import ReplayWorkload


class TestReplayWorkload:
    def test_from_array(self):
        w = ReplayWorkload(np.arange(10), name="demo")
        np.testing.assert_array_equal(w.generate(4), [0, 1, 2, 3])
        np.testing.assert_array_equal(w.generate(4), [4, 5, 6, 7])
        assert w.name == "demo"
        assert len(w) == 10

    def test_from_npy(self, tmp_path):
        path = tmp_path / "trace.npy"
        np.save(path, np.asarray([5, 7, 9]))
        w = ReplayWorkload(path)
        assert w.name == "trace"
        np.testing.assert_array_equal(w.generate(3), [5, 7, 9])

    def test_from_text(self, tmp_path):
        path = tmp_path / "values.txt"
        path.write_text("1 2 3\n4 5\n")
        w = ReplayWorkload(path)
        np.testing.assert_array_equal(w.generate(5), [1, 2, 3, 4, 5])

    def test_wraps_around(self):
        w = ReplayWorkload(np.asarray([1, 2, 3]))
        np.testing.assert_array_equal(w.generate(7), [1, 2, 3, 1, 2, 3, 1])
        np.testing.assert_array_equal(w.generate(2), [2, 3])

    def test_no_loop_exhaustion(self):
        w = ReplayWorkload(np.asarray([1, 2, 3]), loop=False)
        w.generate(2)
        with pytest.raises(ValueError, match="exhausted"):
            w.generate(2)

    def test_reset_rewinds(self):
        w = ReplayWorkload(np.asarray([1, 2, 3]))
        w.generate(2)
        w.reset()
        np.testing.assert_array_equal(w.generate(2), [1, 2])

    def test_universe_covers_values(self):
        w = ReplayWorkload(np.asarray([0, 1000]))
        assert 2**w.universe_log2 > 1000

    def test_rejects_empty_and_negative(self, tmp_path):
        with pytest.raises(ValueError):
            ReplayWorkload(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            ReplayWorkload(np.asarray([-1, 2]))
        with pytest.raises(FileNotFoundError):
            ReplayWorkload(tmp_path / "missing.npy")

    def test_drives_an_engine(self):
        from repro import HybridQuantileEngine

        trace = np.random.default_rng(0).integers(0, 10**6, 5000)
        w = ReplayWorkload(trace)
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        for batch in w.batches(3, 1000):
            engine.stream_update_batch(batch)
            engine.end_time_step()
        engine.stream_update_batch(w.generate(1000))
        assert engine.n_total == 4000
        assert engine.quantile(0.5).value in trace
