"""Tests for the four evaluation workloads."""

import numpy as np
import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    NetworkTraceWorkload,
    NormalWorkload,
    UniformWorkload,
    WikipediaWorkload,
)


class TestCommonProperties:
    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_deterministic_with_seed(self, workload_cls):
        a = workload_cls(seed=42).generate(1000)
        b = workload_cls(seed=42).generate(1000)
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_different_seeds_differ(self, workload_cls):
        a = workload_cls(seed=1).generate(1000)
        b = workload_cls(seed=2).generate(1000)
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_values_fit_universe(self, workload_cls):
        w = workload_cls(seed=0)
        data = w.generate(5000)
        assert data.dtype == np.int64
        assert data.min() >= 0
        assert data.max() < 2**w.universe_log2

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_batches_iterator(self, workload_cls):
        w = workload_cls(seed=0)
        batches = list(w.batches(3, 100))
        assert len(batches) == 3
        assert all(len(b) == 100 for b in batches)

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_reset_rewinds(self, workload_cls):
        w = workload_cls(seed=9)
        first = w.generate(500)
        w.generate(500)
        w.reset()
        np.testing.assert_array_equal(w.generate(500), first)


class TestNormal:
    def test_moments(self):
        data = NormalWorkload(seed=0).generate(200_000)
        assert abs(data.mean() - 1e8) < 1e6
        assert abs(data.std() - 1e7) < 1e6


class TestUniform:
    def test_range_and_flatness(self):
        w = UniformWorkload(seed=0)
        data = w.generate(200_000)
        assert data.min() >= 10**8
        assert data.max() < 10**9
        # quartiles of a uniform distribution are evenly spaced
        q1, q2, q3 = np.percentile(data, [25, 50, 75])
        span = 9e8
        assert abs((q2 - q1) - span / 4) < span / 40
        assert abs((q3 - q2) - span / 4) < span / 40

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformWorkload(low=10, high=10)


class TestWikipedia:
    def test_heavy_tail_and_duplicates(self):
        data = WikipediaWorkload(seed=0).generate(100_000)
        # heavy duplication from popular pages
        unique_fraction = len(np.unique(data)) / len(data)
        assert unique_fraction < 0.5
        # right-skewed: mean well above median
        assert data.mean() > np.median(data)


class TestNetworkTrace:
    def test_pair_packing(self):
        w = NetworkTraceWorkload(seed=0, num_hosts=1000)
        data = w.generate(10_000)
        sources = data >> 20
        destinations = data & ((1 << 20) - 1)
        assert sources.max() < 1000
        assert destinations.max() < 1000

    def test_zipf_concentration(self):
        data = NetworkTraceWorkload(seed=0).generate(100_000)
        values, counts = np.unique(data, return_counts=True)
        counts.sort()
        # top 1% of pairs carry a disproportionate share of traffic
        top = counts[-max(1, len(counts) // 100):].sum()
        assert top / len(data) > 0.05

    def test_num_hosts_validation(self):
        with pytest.raises(ValueError):
            NetworkTraceWorkload(num_hosts=1 << 20)
