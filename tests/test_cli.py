"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInit:
    def test_creates_warehouse(self, tmp_path, capsys):
        code, out, _ = run(capsys, "init", str(tmp_path / "wh"),
                           "--epsilon", "0.01")
        assert code == 0
        assert "initialized" in out
        assert (tmp_path / "wh" / "engine.json").exists()

    def test_refuses_overwrite(self, tmp_path, capsys):
        run(capsys, "init", str(tmp_path / "wh"))
        code, _, err = run(capsys, "init", str(tmp_path / "wh"))
        assert code == 1
        assert "already" in err

    def test_force_overwrites(self, tmp_path, capsys):
        run(capsys, "init", str(tmp_path / "wh"))
        code, *_ = run(capsys, "init", str(tmp_path / "wh"), "--force")
        assert code == 0


class TestIngestAndQuery:
    @pytest.fixture
    def warehouse(self, tmp_path, capsys):
        path = tmp_path / "wh"
        run(capsys, "init", str(path), "--epsilon", "0.02",
            "--kappa", "3", "--block-elems", "16")
        return path

    def _ingest(self, capsys, warehouse, tmp_path, data, name, archive):
        source = tmp_path / name
        np.save(source, np.asarray(data, dtype=np.int64))
        argv = ["ingest", str(warehouse), str(source) + ""]
        # np.save appends .npy
        argv[2] = str(source) + ".npy"
        if archive:
            argv.append("--archive")
        return run(capsys, *argv)

    def test_ingest_npy(self, warehouse, tmp_path, capsys):
        code, out, _ = self._ingest(
            capsys, warehouse, tmp_path, range(1000), "batch", archive=True
        )
        assert code == 0
        assert "streamed 1,000" in out
        assert "archived step 1" in out

    def test_ingest_text_file(self, warehouse, tmp_path, capsys):
        source = tmp_path / "values.txt"
        source.write_text("5 3 9\n7 1\n")
        code, out, _ = run(capsys, "ingest", str(warehouse), str(source))
        assert code == 0
        assert "streamed 5" in out

    def test_query_median(self, warehouse, tmp_path, capsys):
        self._ingest(capsys, warehouse, tmp_path,
                     range(1, 1002), "batch", archive=True)
        self._ingest(capsys, warehouse, tmp_path,
                     range(1, 1002), "live", archive=False)
        code, out, _ = run(capsys, "query", str(warehouse), "--phi", "0.5")
        assert code == 0
        lines = out.strip().splitlines()
        value = int(lines[-1].split()[1].replace(",", ""))
        assert abs(value - 501) <= 0.02 * 1001 * 2 + 2

    def test_query_quick_mode(self, warehouse, tmp_path, capsys):
        self._ingest(capsys, warehouse, tmp_path,
                     range(1000), "batch", archive=True)
        code, out, _ = run(capsys, "query", str(warehouse),
                           "--phi", "0.5", "--mode", "quick")
        assert code == 0

    def test_query_empty_warehouse(self, warehouse, capsys):
        code, _, err = run(capsys, "query", str(warehouse))
        assert code == 1
        assert "empty" in err

    def test_status(self, warehouse, tmp_path, capsys):
        self._ingest(capsys, warehouse, tmp_path,
                     range(1000), "batch", archive=True)
        code, out, _ = run(capsys, "status", str(warehouse))
        assert code == 0
        assert "historical elems : 1,000" in out
        assert "L0[1-1]" in out

    def test_state_persists_across_invocations(self, warehouse, tmp_path,
                                               capsys):
        for step in range(4):
            self._ingest(capsys, warehouse, tmp_path,
                         range(step * 100, step * 100 + 500),
                         f"b{step}", archive=True)
        code, out, _ = run(capsys, "status", str(warehouse))
        assert "4 steps" in out

    def test_missing_warehouse(self, tmp_path, capsys):
        code, _, err = run(capsys, "query", str(tmp_path / "missing"))
        assert code == 1
        assert "error" in err

    def test_missing_source_file(self, warehouse, capsys):
        code, _, err = run(capsys, "ingest", str(warehouse), "nope.npy")
        assert code == 1


class TestDemo:
    def test_demo_runs(self, capsys):
        code, out, _ = run(capsys, "demo", "--steps", "3",
                           "--batch", "2000", "--epsilon", "0.05")
        assert code == 0
        assert "phi=0.5" in out
        assert "memory:" in out


class TestMultiPhiQuery:
    @pytest.fixture
    def warehouse(self, tmp_path, capsys):
        path = tmp_path / "wh"
        run(capsys, "init", str(path), "--epsilon", "0.02",
            "--kappa", "3", "--block-elems", "16")
        source = tmp_path / "batch.npy"
        np.save(source, np.arange(1, 2001, dtype=np.int64))
        run(capsys, "ingest", str(path), str(source), "--archive")
        return path

    def test_one_row_per_phi_in_order(self, warehouse, capsys):
        code, out, _ = run(capsys, "query", str(warehouse),
                           "--phi", "0.25", "0.5", "0.75",
                           "--mode", "quick")
        assert code == 0
        rows = out.strip().splitlines()[1:]
        assert len(rows) == 3
        phis = [float(row.split()[0]) for row in rows]
        assert phis == [0.25, 0.5, 0.75]
        values = [int(row.split()[1].replace(",", "")) for row in rows]
        assert values == sorted(values)
        for phi, value in zip(phis, values):
            assert abs(value - phi * 2000) <= 0.02 * 2000 + 2

    def test_multi_phi_accurate_mode(self, warehouse, capsys):
        code, out, _ = run(capsys, "query", str(warehouse),
                           "--phi", "0.5", "0.99")
        assert code == 0
        assert len(out.strip().splitlines()) == 3


class TestServeBench:
    def test_small_sweep_writes_json(self, tmp_path, capsys):
        output = tmp_path / "serve.json"
        code, out, _ = run(capsys, "serve-bench",
                           "--steps", "2", "--batch", "2000",
                           "--clients", "1", "4",
                           "--requests", "3", "--output", str(output))
        assert code == 0
        assert "serve-bench" in out
        assert "overload[reject]" in out
        assert "overload[degrade]" in out
        assert "MISMATCH" not in out
        import json
        doc = json.loads(output.read_text())
        assert doc["benchmark"] == "serving_ablation"
        assert {row["clients"] for row in doc["closed_loop"]} == {1, 4}
        for row in doc["closed_loop"]:
            assert row["bit_identical"]
            assert row["served"] + row["rejected"] == row["requests"]
