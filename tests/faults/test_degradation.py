"""Graceful degradation of accurate queries under disk faults."""

import numpy as np
import pytest

from repro import (
    EngineConfig,
    FaultPlan,
    FaultyDisk,
    HybridQuantileEngine,
    QuantileWatcher,
    TransientReadError,
)
from repro.core.snapshot import EngineSnapshot

ALL_READS_FAIL = FaultPlan(seed=1, read_error_rate=1.0)


def build_engine(plan, steps=5, batch=500, live=100, **overrides):
    config = EngineConfig(
        epsilon=0.02,
        kappa=10,  # > steps: ingestion merges nothing, reads nothing
        block_elems=64,
        retry_backoff_seconds=0.0,
        **overrides,
    )
    engine = HybridQuantileEngine(
        config=config, disk=FaultyDisk(plan, block_elems=64)
    )
    rng = np.random.default_rng(0)
    for _ in range(steps):
        engine.stream_update_batch(rng.integers(0, 10**6, batch))
        engine.end_time_step()
    if live:
        engine.stream_update_batch(rng.integers(0, 10**6, live))
    return engine


class TestDegradedQueries:
    def test_falls_back_to_quick_response(self):
        engine = build_engine(ALL_READS_FAIL, probe_retries=2)
        result = engine.quantile(0.5)
        assert result.degraded
        assert result.truncated
        assert result.mode == "accurate"
        # The degraded bound is the quick bound: eps1*n + eps2*m.
        config = engine.config
        expected = (
            config.epsilon1 * engine.n_historical
            + config.epsilon2 * engine.m_stream
        )
        assert result.rank_error_bound == pytest.approx(expected)
        quick = engine.quantile(0.5, mode="quick")
        assert result.value == quick.value
        engine.close()

    def test_counters_track_degradation(self):
        engine = build_engine(ALL_READS_FAIL, probe_retries=1)
        engine.quantile(0.5)
        engine.quantile(0.9)
        report = engine.reliability
        assert report.degraded_queries == 2
        assert report.probe_retries > 0
        assert report.disk_faults >= report.probe_retries
        assert not report.healthy
        engine.close()

    def test_degrade_disabled_raises_typed_fault(self):
        engine = build_engine(
            ALL_READS_FAIL, probe_retries=1, degrade_on_fault=False
        )
        with pytest.raises(TransientReadError):
            engine.quantile(0.5)
        engine.close()

    def test_quick_queries_unaffected(self):
        engine = build_engine(ALL_READS_FAIL)
        result = engine.quantile(0.5, mode="quick")
        assert not result.degraded
        assert engine.reliability.degraded_queries == 0
        engine.close()

    def test_accurate_succeeds_after_transient_burst(self):
        """A burst smaller than the retry budget heals invisibly."""
        plan = FaultPlan(seed=3, read_error_rate=1.0, max_faults=2)
        engine = build_engine(plan, probe_retries=8)
        result = engine.quantile(0.5)
        assert not result.degraded
        report = engine.reliability
        assert report.probe_retries == 2
        assert report.degraded_queries == 0
        engine.close()

    def test_quantiles_degrade_per_phi(self):
        engine = build_engine(ALL_READS_FAIL, probe_retries=1)
        results = engine.quantiles([0.25, 0.5, 0.75])
        assert all(r.degraded for r in results)
        assert engine.reliability.degraded_queries == 3
        engine.close()

    def test_snapshot_degrades_like_engine(self):
        engine = build_engine(ALL_READS_FAIL, probe_retries=1)
        view = EngineSnapshot(engine)
        result = view.quantile(0.5)
        assert result.degraded
        assert engine.reliability.degraded_queries == 1
        engine.close()


class TestWatcherIntegration:
    def test_health_rule_fires_on_degradation(self):
        engine = build_engine(ALL_READS_FAIL, probe_retries=1)
        watcher = QuantileWatcher(engine)
        watcher.watch_health("disk-health", max_degraded_queries=0)
        assert watcher.check_health() == []
        engine.quantile(0.5)
        alerts = watcher.check_health()
        assert len(alerts) == 1
        assert alerts[0].breaches == ("degraded_queries",)
        assert alerts[0].report.degraded_queries == 1
        engine.close()

    def test_quantile_alert_marks_degraded_observation(self):
        engine = build_engine(ALL_READS_FAIL, probe_retries=1)
        watcher = QuantileWatcher(engine)
        watcher.add("p50", 0.5, above=0, mode="accurate")
        alerts = watcher.evaluate()
        assert len(alerts) == 1
        assert alerts[0].degraded
        engine.close()

    def test_health_rule_validation(self):
        engine = build_engine(FaultPlan())
        watcher = QuantileWatcher(engine)
        with pytest.raises(ValueError, match="at least one"):
            watcher.watch_health("empty")
        watcher.watch_health("ok", max_retries=5)
        with pytest.raises(ValueError, match="duplicate"):
            watcher.watch_health("ok", max_retries=1)
        watcher.remove("ok")
        assert watcher.health_rules == []
        engine.close()


class TestContextManagerExit:
    def test_exit_clean_after_degraded_query(self):
        with build_engine(ALL_READS_FAIL, probe_retries=1) as engine:
            assert engine.quantile(0.5).degraded
        # reaching here without an exception is the assertion

    def test_exit_does_not_mask_original_exception(self):
        plan = FaultPlan(seed=2, write_error_rate=1.0)
        config = EngineConfig(
            epsilon=0.02,
            kappa=10,
            block_elems=64,
            ingest_mode="background",
            archive_retries=0,
            retry_backoff_seconds=0.0,
        )
        rng = np.random.default_rng(0)
        with pytest.raises(KeyError):
            with HybridQuantileEngine(
                config=config, disk=FaultyDisk(plan, block_elems=64)
            ) as engine:
                engine.stream_update_batch(rng.integers(0, 10**6, 500))
                engine.end_time_step()  # archiver will die on the write
                raise KeyError("original")  # must not be masked by close
