"""Tests for the capped-exponential-backoff retry policy."""

import pytest

from repro.faults import RetryPolicy, TransientReadError
from repro.faults.errors import CorruptedBlockError


def flaky(failures, exc_factory=lambda k: TransientReadError("read", k)):
    """A callable failing ``failures`` times before returning 42."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc_factory(state["calls"])
        return 42

    fn.state = state
    return fn


class TestRetryPolicy:
    def test_no_retries_by_default(self):
        with pytest.raises(TransientReadError):
            RetryPolicy().call(flaky(1))

    def test_retries_transient_until_success(self):
        fn = flaky(3)
        assert RetryPolicy(max_retries=3).call(fn) == 42
        assert fn.state["calls"] == 4

    def test_exhausted_budget_raises_last_fault(self):
        with pytest.raises(TransientReadError):
            RetryPolicy(max_retries=2).call(flaky(5))

    def test_persistent_faults_never_retried(self):
        fn = flaky(1, exc_factory=lambda k: CorruptedBlockError("read", k))
        with pytest.raises(CorruptedBlockError):
            RetryPolicy(max_retries=5).call(fn)
        assert fn.state["calls"] == 1

    def test_unrelated_exceptions_never_retried(self):
        fn = flaky(1, exc_factory=lambda k: KeyError(k))
        with pytest.raises(KeyError):
            RetryPolicy(max_retries=5).call(fn)
        assert fn.state["calls"] == 1

    def test_on_retry_callback_sees_each_fault(self):
        seen = []
        RetryPolicy(max_retries=3).call(
            flaky(2), on_retry=lambda fault, attempt: seen.append(attempt)
        )
        assert seen == [1, 2]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            max_retries=10, backoff_seconds=0.1, backoff_cap_seconds=0.4
        )
        delays = [policy.sleep_before(k) for k in range(1, 7)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert max(delays) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)


class TestJitterDeterminism:
    def test_same_seed_same_schedule(self):
        a = RetryPolicy(
            max_retries=8, backoff_seconds=0.1, backoff_cap_seconds=2.0,
            jitter=0.5, seed=13,
        )
        b = RetryPolicy(
            max_retries=8, backoff_seconds=0.1, backoff_cap_seconds=2.0,
            jitter=0.5, seed=13,
        )
        schedule = [a.sleep_before(k) for k in range(1, 9)]
        assert schedule == [b.sleep_before(k) for k in range(1, 9)]
        # And replaying the same policy is stable too.
        assert schedule == [a.sleep_before(k) for k in range(1, 9)]

    def test_different_seeds_differ(self):
        a = RetryPolicy(backoff_seconds=0.1, jitter=0.9, seed=1)
        b = RetryPolicy(backoff_seconds=0.1, jitter=0.9, seed=2)
        assert [a.sleep_before(k) for k in range(1, 9)] != [
            b.sleep_before(k) for k in range(1, 9)
        ]

    def test_none_seed_behaves_as_zero(self):
        a = RetryPolicy(backoff_seconds=0.1, jitter=0.5, seed=None)
        b = RetryPolicy(backoff_seconds=0.1, jitter=0.5, seed=0)
        assert [a.sleep_before(k) for k in range(1, 5)] == [
            b.sleep_before(k) for k in range(1, 5)
        ]

    def test_zero_jitter_keeps_legacy_schedule(self):
        jittered = RetryPolicy(
            backoff_seconds=0.1, backoff_cap_seconds=0.4, jitter=0.0, seed=99
        )
        assert [jittered.sleep_before(k) for k in range(1, 4)] == [
            pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.4)
        ]

    def test_jitter_only_shaves_never_extends(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, backoff_cap_seconds=2.0, jitter=1.0, seed=5
        )
        for k in range(1, 10):
            base = min(0.1 * 2.0 ** (k - 1), 2.0)
            assert 0.0 <= policy.sleep_before(k) <= base

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_global_random_state_untouched(self):
        import random

        random.seed(0)
        expected = [random.random() for _ in range(3)]
        random.seed(0)
        policy = RetryPolicy(backoff_seconds=0.1, jitter=1.0, seed=77)
        for k in range(1, 6):
            policy.sleep_before(k)
        assert [random.random() for _ in range(3)] == expected
