"""Tests for the capped-exponential-backoff retry policy."""

import pytest

from repro.faults import RetryPolicy, TransientReadError
from repro.faults.errors import CorruptedBlockError


def flaky(failures, exc_factory=lambda k: TransientReadError("read", k)):
    """A callable failing ``failures`` times before returning 42."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc_factory(state["calls"])
        return 42

    fn.state = state
    return fn


class TestRetryPolicy:
    def test_no_retries_by_default(self):
        with pytest.raises(TransientReadError):
            RetryPolicy().call(flaky(1))

    def test_retries_transient_until_success(self):
        fn = flaky(3)
        assert RetryPolicy(max_retries=3).call(fn) == 42
        assert fn.state["calls"] == 4

    def test_exhausted_budget_raises_last_fault(self):
        with pytest.raises(TransientReadError):
            RetryPolicy(max_retries=2).call(flaky(5))

    def test_persistent_faults_never_retried(self):
        fn = flaky(1, exc_factory=lambda k: CorruptedBlockError("read", k))
        with pytest.raises(CorruptedBlockError):
            RetryPolicy(max_retries=5).call(fn)
        assert fn.state["calls"] == 1

    def test_unrelated_exceptions_never_retried(self):
        fn = flaky(1, exc_factory=lambda k: KeyError(k))
        with pytest.raises(KeyError):
            RetryPolicy(max_retries=5).call(fn)
        assert fn.state["calls"] == 1

    def test_on_retry_callback_sees_each_fault(self):
        seen = []
        RetryPolicy(max_retries=3).call(
            flaky(2), on_retry=lambda fault, attempt: seen.append(attempt)
        )
        assert seen == [1, 2]

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            max_retries=10, backoff_seconds=0.1, backoff_cap_seconds=0.4
        )
        delays = [policy.sleep_before(k) for k in range(1, 7)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert max(delays) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)
