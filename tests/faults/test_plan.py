"""Tests for the deterministic fault plan."""

import json

import pytest

from repro.faults import FaultPlan
from repro.faults.plan import CORRUPT, STALL, TRANSIENT


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=7, read_error_rate=0.3, write_error_rate=0.2)
        b = FaultPlan(seed=7, read_error_rate=0.3, write_error_rate=0.2)
        for index in range(500):
            for op in ("read", "write"):
                assert a.decide(op, index) == b.decide(op, index)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, read_error_rate=0.3)
        b = FaultPlan(seed=2, read_error_rate=0.3)
        decisions_a = [a.decide("read", i) for i in range(200)]
        decisions_b = [b.decide("read", i) for i in range(200)]
        assert decisions_a != decisions_b

    def test_order_independent(self):
        """The decision for op k never depends on earlier queries."""
        plan = FaultPlan(seed=3, read_error_rate=0.5)
        forward = [plan.decide("read", i) for i in range(100)]
        backward = [plan.decide("read", i) for i in reversed(range(100))]
        assert forward == list(reversed(backward))

    def test_rates_are_approximately_honored(self):
        plan = FaultPlan(seed=11, read_error_rate=0.25)
        fired = sum(
            plan.decide("read", i) is not None for i in range(4000)
        )
        assert 0.18 < fired / 4000 < 0.32


class TestDecisions:
    def test_null_plan_never_faults(self):
        plan = FaultPlan(seed=9)
        assert plan.null
        assert all(
            plan.decide(op, i) is None
            for op in ("read", "write")
            for i in range(100)
        )

    def test_max_faults_zero_is_null(self):
        assert FaultPlan(read_error_rate=1.0, max_faults=0).null

    def test_read_bands(self):
        plan = FaultPlan(seed=5, read_error_rate=0.4, corrupt_rate=0.6)
        decisions = {plan.decide("read", i) for i in range(200)}
        assert decisions == {TRANSIENT, CORRUPT}

    def test_write_bands(self):
        plan = FaultPlan(seed=5, write_error_rate=0.4, stall_rate=0.6)
        decisions = {plan.decide("write", i) for i in range(200)}
        assert decisions == {TRANSIENT, STALL}

    def test_read_rates_never_fault_writes(self):
        plan = FaultPlan(seed=5, read_error_rate=1.0)
        assert all(plan.decide("write", i) is None for i in range(100))

    def test_pinned_operation_faults(self):
        plan = FaultPlan(seed=1, fail_at={("write", 3)})
        assert plan.decide("write", 3) == TRANSIENT
        assert plan.decide("read", 3) is None
        assert plan.decide("write", 4) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(read_error_rate=0.7, corrupt_rate=0.7)
        with pytest.raises(ValueError):
            FaultPlan(stall_seconds=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(max_faults=-1)


class TestSpecRoundTrip:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=13,
            read_error_rate=0.1,
            corrupt_rate=0.05,
            max_faults=9,
            fail_at={("read", 2), ("write", 7)},
        )
        assert FaultPlan.from_spec(plan.to_json()) == plan

    def test_from_dict(self):
        plan = FaultPlan.from_spec({"seed": 4, "write_error_rate": 0.2})
        assert plan.seed == 4
        assert plan.write_error_rate == 0.2

    def test_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 8, "read_error_rate": 0.3}))
        assert FaultPlan.from_spec(str(path)).seed == 8

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            FaultPlan.from_spec({"seeed": 4})

    def test_missing_file_rejected(self):
        with pytest.raises(ValueError, match="not found"):
            FaultPlan.from_spec("no/such/plan.json")

    def test_garbled_json_rejected(self):
        with pytest.raises(ValueError, match="garbled"):
            FaultPlan.from_spec("{not json")
