"""Self-healing behaviour of the background archiver under faults."""

import time

import numpy as np
import pytest

from repro.core.summaries import PartitionSummary
from repro.faults import FaultPlan, FaultyDisk, RetryPolicy
from repro.ingest import BackgroundArchiver, PendingBatch
from repro.ingest.archiver import ArchiveFailedError
from repro.warehouse.leveled_store import LeveledStore

FAST_RETRY = RetryPolicy(max_retries=64, backoff_seconds=0.0)


def make_store(plan=None, kappa=3, block_elems=64):
    disk = FaultyDisk(plan or FaultPlan(), block_elems=block_elems)
    return LeveledStore(
        disk,
        kappa=kappa,
        summary_builder=lambda p: PartitionSummary.build(p, 0.01),
    )


def make_batch(step, size=100, seed=0):
    rng = np.random.default_rng(seed + step)
    return PendingBatch(
        step=step, values=rng.integers(0, 10**6, size=size).astype(np.int64)
    )


class TestRetrySurvival:
    def test_completes_all_batches_under_transient_faults(self):
        store = make_store(FaultPlan(seed=4, write_error_rate=0.2,
                                     read_error_rate=0.2))
        archiver = BackgroundArchiver(store, max_pending=8, retry=FAST_RETRY)
        try:
            for step in range(1, 10):
                archiver.submit(make_batch(step))
            records = archiver.drain()
        finally:
            archiver.close()
        assert [r.step for r in records] == list(range(1, 10))
        assert store.steps_loaded == 9
        assert archiver.stats.batches_archived == 9
        assert archiver.stats.fault_retries > 0
        assert archiver.stats.disk_faults >= archiver.stats.fault_retries
        store.check_invariant()

    def test_batch_stays_queued_and_queryable_across_retries(self):
        """A faulted attempt must not drop the batch from the pending
        set — the union a concurrent query sees stays complete."""
        # The first two write operations are pinned to fault, so the
        # first two archive attempts fail deterministically.
        store = make_store(FaultPlan(fail_at={("write", 0), ("write", 1)}))
        archiver = BackgroundArchiver(store, max_pending=4, retry=FAST_RETRY)
        try:
            archiver.submit(make_batch(1))
            archiver.drain()
        finally:
            archiver.close()
        assert store.steps_loaded == 1
        assert archiver.stats.fault_retries == 2
        assert archiver.stats.batches_archived == 1


class TestFatalErrors:
    def test_exhausted_retries_poison_the_archiver(self):
        store = make_store(FaultPlan(seed=2, write_error_rate=1.0))
        archiver = BackgroundArchiver(
            store, retry=RetryPolicy(max_retries=2)
        )
        with pytest.raises(ArchiveFailedError, match="archiving failed"):
            archiver.submit(make_batch(1))
            archiver.drain()
        archiver.close()  # error already delivered: close is clean

    def test_close_raises_undelivered_error(self):
        store = make_store(FaultPlan(seed=2, write_error_rate=1.0))
        archiver = BackgroundArchiver(store)  # no retries: first fault fatal
        archiver.submit(make_batch(1))
        while not archiver.failed:
            time.sleep(0.001)
        with pytest.raises(ArchiveFailedError) as excinfo:
            archiver.close()
        assert excinfo.value.__cause__ is not None

    def test_failed_flag_reports_thread_state(self):
        store = make_store(FaultPlan(seed=2, write_error_rate=1.0))
        archiver = BackgroundArchiver(store)
        assert not archiver.failed
        archiver.submit(make_batch(1))
        with pytest.raises(ArchiveFailedError):
            archiver.drain()
        assert archiver.failed
        archiver.close()

    def test_submit_after_failure_raises_typed_error(self):
        store = make_store(FaultPlan(seed=2, write_error_rate=1.0))
        archiver = BackgroundArchiver(store)
        archiver.submit(make_batch(1))
        while not archiver.failed:
            time.sleep(0.001)
        with pytest.raises(ArchiveFailedError):
            archiver.submit(make_batch(2))
        archiver.close()
