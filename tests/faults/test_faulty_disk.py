"""Tests for the fault-injecting disk wrapper."""

import json

import numpy as np
import pytest

from repro.faults import (
    CorruptedBlockError,
    FaultPlan,
    FaultyDisk,
    TransientReadError,
    TransientWriteError,
)
from repro.storage import SimulatedDisk


class TestFaultRaising:
    def test_pinned_read_fault(self):
        disk = FaultyDisk(FaultPlan(fail_at={("read", 0)}), block_elems=16)
        with pytest.raises(TransientReadError) as excinfo:
            disk.charge_random_read(1)
        assert excinfo.value.transient
        assert excinfo.value.op == "read"
        assert excinfo.value.index == 0

    def test_pinned_write_fault(self):
        disk = FaultyDisk(FaultPlan(fail_at={("write", 0)}), block_elems=16)
        with pytest.raises(TransientWriteError):
            disk.write_sequential(np.arange(10))

    def test_corruption_is_persistent(self):
        disk = FaultyDisk(FaultPlan(corrupt_rate=1.0), block_elems=16)
        with pytest.raises(CorruptedBlockError) as excinfo:
            disk.charge_sequential_read(10)
        assert not excinfo.value.transient

    def test_faulted_op_charges_nothing(self):
        disk = FaultyDisk(FaultPlan(read_error_rate=1.0), block_elems=16)
        with pytest.raises(TransientReadError):
            disk.charge_random_read(1)
        assert disk.stats.counters.random_reads == 0
        assert disk.stats.counters.sequential_reads == 0

    def test_max_faults_caps_the_burst(self):
        disk = FaultyDisk(
            FaultPlan(read_error_rate=1.0, max_faults=2), block_elems=16
        )
        for _ in range(2):
            with pytest.raises(TransientReadError):
                disk.charge_random_read(1)
        disk.charge_random_read(1)  # budget exhausted: op succeeds
        assert disk.faults_fired == 2
        assert disk.stats.counters.random_reads == 1

    def test_stall_succeeds(self):
        disk = FaultyDisk(
            FaultPlan(stall_rate=1.0, stall_seconds=0.0), block_elems=16
        )
        disk.charge_sequential_write(10)
        assert disk.stats.counters.sequential_writes > 0
        assert disk.faults_fired == 1


class TestTranscript:
    def test_events_recorded_and_dumped(self, tmp_path):
        disk = FaultyDisk(
            FaultPlan(seed=2, read_error_rate=1.0, max_faults=3),
            block_elems=16,
        )
        for _ in range(3):
            with pytest.raises(TransientReadError):
                disk.charge_random_read(1)
        disk.charge_random_read(1)
        path = disk.dump_transcript(tmp_path / "transcript.json")
        payload = json.loads(path.read_text())
        assert payload["operations"] == disk.operations
        assert len(payload["events"]) == 3
        assert payload["plan"]["read_error_rate"] == 1.0
        assert all(e["op"] == "read" for e in payload["events"])


class TestNullPlanEquivalence:
    def test_counters_identical_to_plain_disk(self):
        plain = SimulatedDisk(block_elems=16)
        faulty = FaultyDisk(FaultPlan(), block_elems=16)
        rng = np.random.default_rng(0)
        data = rng.integers(0, 1000, 100)
        for disk in (plain, faulty):
            stored = disk.write_sequential(data)
            disk.read_sequential(stored)
            disk.charge_random_read(3)
            disk.charge_sequential_read(50)
            disk.charge_sequential_write(50)
        assert (
            plain.stats.counters.snapshot()
            == faulty.stats.counters.snapshot()
        )
        assert faulty.operations == 0  # null plan never consults the RNG
