"""Crash-recovery harness for the atomic checkpoint protocol.

Kills a ``save_engine`` at every named crash point (via the
``crash_hook`` test seam) and asserts the reloaded engine answers
exactly as either the previous or the new checkpoint — never a torn
mixture — and that the directory tree is left clean.  Runs under a
seed matrix in the dedicated CI job (``-m faults``).
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.persistence import (
    PersistenceError,
    SimulatedCrash,
    load_engine,
    recover_checkpoint,
    save_engine,
)
from repro.persistence import checkpoint as checkpoint_module
from repro.persistence.checkpoint import CRASH_POINTS

pytestmark = pytest.mark.faults

SEED = int(__import__("os").environ.get("FAULTS_SEED", "0"))


def build_engine(rng, steps=6, batch=300, live=50):
    engine = HybridQuantileEngine(
        config=EngineConfig(epsilon=0.05, kappa=3, block_elems=64)
    )
    for _ in range(steps):
        engine.stream_update_batch(rng.integers(0, 10**6, batch))
        engine.end_time_step()
    if live:
        engine.stream_update_batch(rng.integers(0, 10**6, live))
    return engine


def fingerprint(engine):
    """Everything a restored engine must reproduce exactly."""
    return (
        engine.n_total,
        engine.n_historical,
        engine.m_stream,
        engine.steps_loaded,
        [
            (p.level, p.start_step, p.end_step, len(p))
            for p in engine.store.partitions()
        ],
        [engine.quantile(phi, mode="quick").value
         for phi in (0.1, 0.5, 0.9)],
        [engine.quantile(phi, mode="accurate").value
         for phi in (0.1, 0.5, 0.9)],
    )


@pytest.fixture(autouse=True)
def reset_crash_hook():
    yield
    checkpoint_module.crash_hook = None


def crash_at(point):
    def hook(reached):
        if reached == point:
            raise SimulatedCrash(point)

    checkpoint_module.crash_hook = hook


@pytest.mark.parametrize("point", CRASH_POINTS)
class TestKillPoints:
    def test_recovery_restores_old_or_new_exactly(self, tmp_path, point):
        rng = np.random.default_rng(SEED)
        directory = tmp_path / "ckpt"
        engine = build_engine(rng)
        save_engine(engine, directory)
        old_print = fingerprint(load_engine(directory))
        engine.stream_update_batch(rng.integers(0, 10**6, 400))
        engine.end_time_step()
        new_print = fingerprint(engine)
        assert new_print != old_print
        crash_at(point)
        with pytest.raises(SimulatedCrash):
            save_engine(engine, directory)
        checkpoint_module.crash_hook = None
        restored = load_engine(directory)
        got = fingerprint(restored)
        # The protocol commits at the stage->directory rename: crashes
        # before it must roll back, crashes at/after it roll forward.
        expected = (
            new_print if point in ("retired-old", "promoted") else old_print
        )
        assert got == expected
        # Recovery leaves no staging debris behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt"]
        restored.close()
        engine.close()

    def test_recovery_is_idempotent(self, tmp_path, point):
        rng = np.random.default_rng(SEED)
        directory = tmp_path / "ckpt"
        engine = build_engine(rng, steps=3)
        save_engine(engine, directory)
        engine.stream_update_batch(rng.integers(0, 10**6, 200))
        engine.end_time_step()
        crash_at(point)
        with pytest.raises(SimulatedCrash):
            save_engine(engine, directory)
        checkpoint_module.crash_hook = None
        first = recover_checkpoint(directory)
        second = recover_checkpoint(directory)
        assert first == second == directory
        load_engine(directory).close()
        engine.close()


class TestFirstSaveCrash:
    def test_crash_before_commit_leaves_nothing_loadable(self, tmp_path):
        """With no previous checkpoint a pre-commit crash means there
        is nothing to restore — load raises a typed error rather than
        inventing state."""
        rng = np.random.default_rng(SEED)
        directory = tmp_path / "ckpt"
        engine = build_engine(rng, steps=2)
        crash_at("mid-stage")
        with pytest.raises(SimulatedCrash):
            save_engine(engine, directory)
        checkpoint_module.crash_hook = None
        with pytest.raises(PersistenceError):
            load_engine(directory)
        engine.close()

    def test_crash_after_commit_is_recoverable(self, tmp_path):
        rng = np.random.default_rng(SEED)
        directory = tmp_path / "ckpt"
        engine = build_engine(rng, steps=2)
        crash_at("promoted")
        with pytest.raises(SimulatedCrash):
            save_engine(engine, directory)
        checkpoint_module.crash_hook = None
        restored = load_engine(directory)
        assert fingerprint(restored) == fingerprint(engine)
        restored.close()
        engine.close()


class TestDoubleCrash:
    def test_crashed_save_then_crashed_save(self, tmp_path):
        """A save that crashes over the debris of an earlier crashed
        save still leaves a recoverable tree."""
        rng = np.random.default_rng(SEED)
        directory = tmp_path / "ckpt"
        engine = build_engine(rng, steps=3)
        save_engine(engine, directory)
        old_print = fingerprint(load_engine(directory))
        engine.stream_update_batch(rng.integers(0, 10**6, 200))
        engine.end_time_step()
        crash_at("staged")
        with pytest.raises(SimulatedCrash):
            save_engine(engine, directory)
        crash_at("mid-stage")
        with pytest.raises(SimulatedCrash):
            save_engine(engine, directory)
        checkpoint_module.crash_hook = None
        assert fingerprint(load_engine(directory)) == old_print
        engine.close()
