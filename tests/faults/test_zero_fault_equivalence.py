"""A FaultyDisk under the null plan must change nothing.

Acceptance bar for the fault subsystem: with fault injection disabled
(all rates zero), an engine on a :class:`FaultyDisk` is bit-identical
to an engine on a plain :class:`SimulatedDisk` — answers, I/O counters
(including the per-phase split), layout, invariants — across both
ingest modes.
"""

import numpy as np
import pytest

from repro.core.config import EngineConfig
from repro.core.engine import HybridQuantileEngine
from repro.faults import FaultPlan, FaultyDisk
from repro.storage import SimulatedDisk


def drive(disk, ingest_mode, steps=10, batch=400, seed=7):
    config = EngineConfig(
        epsilon=0.01,
        kappa=3,
        block_elems=64,
        ingest_mode=ingest_mode,
        ingest_queue_batches=3,
    )
    engine = HybridQuantileEngine(config=config, disk=disk)
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        engine.stream_update_batch(rng.integers(0, 10**6, size=batch))
        engine.end_time_step()
    engine.flush()
    engine.stream_update_batch(rng.integers(0, 10**6, size=50))
    return engine


def layout(engine):
    return [
        (p.level, p.start_step, p.end_step, len(p))
        for p in engine.store.partitions()
    ]


@pytest.mark.parametrize("ingest_mode", ["sync", "background"])
class TestNullPlanEngineEquivalence:
    def test_bit_identical_to_plain_disk(self, ingest_mode):
        plain = drive(SimulatedDisk(block_elems=64), ingest_mode)
        faulty = drive(
            FaultyDisk(FaultPlan(), block_elems=64), ingest_mode
        )
        try:
            for bucket in ("counters", "load", "sort", "merge", "query"):
                assert getattr(plain.disk.stats, bucket) == getattr(
                    faulty.disk.stats, bucket
                ), bucket
            assert layout(plain) == layout(faulty)
            for phi in (0.05, 0.5, 0.95):
                for mode in ("quick", "accurate"):
                    a = plain.quantile(phi, mode=mode)
                    b = faulty.quantile(phi, mode=mode)
                    assert a.value == b.value, (phi, mode)
                    assert a.disk_accesses == b.disk_accesses
                    assert not b.degraded
                    assert a.rank_error_bound == b.rank_error_bound
            plain.check_invariants()
            faulty.check_invariants()
            report = faulty.reliability
            assert report.healthy
            assert faulty.disk.operations == 0  # plan never consulted
        finally:
            plain.close()
            faulty.close()
