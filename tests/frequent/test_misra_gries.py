"""Unit and property tests for the Misra-Gries sketch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequent import MisraGriesSketch


def true_counts(data):
    values, counts = np.unique(np.asarray(data), return_counts=True)
    return dict(zip(values.tolist(), counts.tolist()))


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            MisraGriesSketch(0)
        with pytest.raises(ValueError):
            MisraGriesSketch.for_epsilon(0.0)

    def test_for_epsilon_sizing(self):
        assert MisraGriesSketch.for_epsilon(0.01).num_counters == 100

    def test_exact_when_few_distinct(self):
        sketch = MisraGriesSketch(10)
        for v in [1, 2, 1, 3, 1, 2]:
            sketch.update(v)
        assert sketch.estimate(1) == 3
        assert sketch.estimate(2) == 2
        assert sketch.estimate(3) == 1
        assert sketch.estimate(9) == 0

    def test_counter_cap_respected(self):
        sketch = MisraGriesSketch(5)
        sketch.update_batch(np.arange(1000))
        assert len(sketch.candidates()) <= 5

    def test_heavy_hitters_threshold(self):
        sketch = MisraGriesSketch(10)
        data = [7] * 60 + list(range(100, 140))
        sketch.update_batch(np.asarray(data))
        assert 7 in sketch.heavy_hitters(0.5)
        with pytest.raises(ValueError):
            sketch.heavy_hitters(0.0)

    def test_memory_words(self):
        sketch = MisraGriesSketch(10)
        sketch.update_batch(np.asarray([1, 1, 2]))
        assert sketch.memory_words() == 2 * 2 + 3


class TestGuarantee:
    def _assert_guarantee(self, sketch, data):
        counts = true_counts(data)
        bound = sketch.error_bound + 1e-9
        for value, true in counts.items():
            est = sketch.estimate(value)
            assert est <= true
            assert est >= true - bound, (value, est, true, bound)

    def test_elementwise(self):
        sketch = MisraGriesSketch(20)
        data = np.random.default_rng(0).zipf(1.3, 5000) % 1000
        for v in data:
            sketch.update(int(v))
        self._assert_guarantee(sketch, data)

    def test_batched(self):
        sketch = MisraGriesSketch(20)
        rng = np.random.default_rng(1)
        chunks = [rng.zipf(1.3, 2000) % 1000 for _ in range(5)]
        for chunk in chunks:
            sketch.update_batch(chunk)
        self._assert_guarantee(sketch, np.concatenate(chunks))

    def test_mixed_updates(self):
        sketch = MisraGriesSketch(15)
        rng = np.random.default_rng(2)
        chunk = rng.integers(0, 50, 3000)
        sketch.update_batch(chunk)
        extra = rng.integers(0, 50, 200)
        for v in extra:
            sketch.update(int(v))
        self._assert_guarantee(sketch, np.concatenate([chunk, extra]))

    @given(
        data=st.lists(st.integers(0, 30), min_size=1, max_size=500),
        k=st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_property(self, data, k):
        sketch = MisraGriesSketch(k)
        sketch.update_batch(np.asarray(data, dtype=np.int64))
        self._assert_guarantee(sketch, data)
