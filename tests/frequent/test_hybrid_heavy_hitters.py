"""Tests for the hybrid heavy-hitters engine."""

import numpy as np
import pytest

from repro.frequent import HeavyHittersEngine


def planted_workload(rng, heavy_values, heavy_share, size):
    """A batch where each heavy value takes ``heavy_share`` of traffic."""
    heavy_total = int(heavy_share * size) * len(heavy_values)
    noise = rng.integers(10**6, 10**9, size - heavy_total)
    planted = np.repeat(
        np.asarray(heavy_values, dtype=np.int64), int(heavy_share * size)
    )
    combined = np.concatenate([noise, planted])
    rng.shuffle(combined)
    return combined


def build(rng, heavy_values=(111, 222), heavy_share=0.1, steps=5,
          batch=2000, epsilon=0.02):
    engine = HeavyHittersEngine(epsilon=epsilon, kappa=3, block_elems=16)
    all_data = []
    for _ in range(steps):
        data = planted_workload(rng, heavy_values, heavy_share, batch)
        all_data.append(data)
        engine.stream_update_batch(data)
        engine.end_time_step()
    live = planted_workload(rng, heavy_values, heavy_share, batch)
    all_data.append(live)
    engine.stream_update_batch(live)
    return engine, np.concatenate(all_data)


class TestHeavyHitters:
    def test_recall_of_planted_values(self, rng):
        engine, data = build(rng)
        report = engine.heavy_hitters(phi=0.05)
        found = {h.value for h in report.hitters}
        assert {111, 222} <= found

    def test_no_false_positives_below_slack(self, rng):
        engine, data = build(rng)
        phi = 0.05
        report = engine.heavy_hitters(phi)
        slack = engine.config.epsilon2 * engine.m_stream + 1
        for hitter in report.hitters:
            true = int(np.sum(data == hitter.value))
            assert true >= phi * len(data) - slack, (hitter, true)

    def test_count_brackets_contain_truth(self, rng):
        engine, data = build(rng)
        report = engine.heavy_hitters(phi=0.05)
        for hitter in report.hitters:
            true = int(np.sum(data == hitter.value))
            assert hitter.count_low <= true <= hitter.count_high

    def test_bracket_width_is_stream_bounded(self, rng):
        engine, data = build(rng)
        report = engine.heavy_hitters(phi=0.05)
        width_bound = engine.config.epsilon2 * engine.m_stream + 1
        for hitter in report.hitters:
            assert hitter.count_high - hitter.count_low <= width_bound

    def test_disk_accesses_counted(self, rng):
        engine, _ = build(rng)
        report = engine.heavy_hitters(phi=0.05)
        assert report.disk_accesses > 0
        assert report.candidates_checked > 0

    def test_stream_only(self, rng):
        engine = HeavyHittersEngine(epsilon=0.02, kappa=3, block_elems=16)
        data = planted_workload(rng, (42,), 0.2, 3000)
        engine.stream_update_batch(data)
        report = engine.heavy_hitters(phi=0.1)
        assert 42 in {h.value for h in report.hitters}
        assert report.disk_accesses == 0

    def test_historical_only(self, rng):
        engine = HeavyHittersEngine(epsilon=0.02, kappa=3, block_elems=16)
        data = planted_workload(rng, (42,), 0.2, 3000)
        engine.stream_update_batch(data)
        engine.end_time_step()
        report = engine.heavy_hitters(phi=0.1)
        hitters = {h.value: h for h in report.hitters}
        assert 42 in hitters
        # historical counts are exact
        true = int(np.sum(data == 42))
        assert hitters[42].count_low == hitters[42].count_high == true

    def test_phi_validation(self, rng):
        engine, _ = build(rng)
        with pytest.raises(ValueError):
            engine.heavy_hitters(0.0)

    def test_ordering_by_count(self, rng):
        engine = HeavyHittersEngine(epsilon=0.02, kappa=3, block_elems=16)
        data = np.concatenate(
            [np.full(500, 7), np.full(300, 9),
             np.random.default_rng(3).integers(100, 10**6, 1200)]
        )
        engine.stream_update_batch(data)
        engine.end_time_step()
        report = engine.heavy_hitters(phi=0.1)
        assert [h.value for h in report.hitters[:2]] == [7, 9]

    def test_memory_far_below_data(self, rng):
        engine, data = build(rng)
        assert engine.memory_words() < len(data) / 4

    def test_beats_pure_streaming_mg(self, rng):
        """Hybrid counts are stream-bounded; a pure-stream MG at equal
        memory undercounts by eps * N."""
        from repro.frequent import MisraGriesSketch

        engine, data = build(rng, steps=8, batch=3000)
        pure = MisraGriesSketch(
            max(1, engine.memory_words() // 2)  # generous equal memory
        )
        pure.update_batch(data)
        report = engine.heavy_hitters(phi=0.05)
        hybrid = {h.value: h for h in report.hitters}
        for value in (111, 222):
            true = int(np.sum(data == value))
            hybrid_err = max(
                hybrid[value].count_high - true,
                true - hybrid[value].count_low,
            )
            pure_err = true - pure.estimate(value)
            assert hybrid_err <= max(pure_err, hybrid_err)  # sanity
            assert hybrid_err <= engine.config.epsilon2 * engine.m_stream + 1
