"""Tests for the Partition dataclass."""

import numpy as np

from repro.storage import SimulatedDisk, SortedRun
from repro.warehouse import Partition


def make_partition(start=3, end=5, size=10):
    disk = SimulatedDisk(block_elems=4)
    run = SortedRun(disk, np.arange(size))
    return Partition(level=1, start_step=start, end_step=end, run=run)


class TestPartition:
    def test_len(self):
        assert len(make_partition(size=10)) == 10

    def test_num_steps(self):
        assert make_partition(3, 5).num_steps == 3
        assert make_partition(7, 7).num_steps == 1

    def test_covers(self):
        p = make_partition(3, 5)
        assert p.covers(3)
        assert p.covers(5)
        assert not p.covers(2)
        assert not p.covers(6)

    def test_summary_defaults_none(self):
        assert make_partition().summary is None
