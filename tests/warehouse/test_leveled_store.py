"""Tests for HD, the leveled partition store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import SimulatedDisk
from repro.warehouse import LeveledStore


def make_store(kappa=3, block_elems=10):
    disk = SimulatedDisk(block_elems=block_elems)
    return disk, LeveledStore(disk, kappa=kappa)


def batch(step, size=100):
    return np.full(size, step, dtype=np.int64)


class TestBasics:
    def test_rejects_small_kappa(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            LeveledStore(disk, kappa=1)

    def test_add_creates_level0_partition(self):
        disk, store = make_store()
        p = store.add_batch(batch(1))
        assert p.level == 0
        assert p.start_step == p.end_step == 1
        assert store.partition_count() == 1

    def test_batch_is_sorted(self):
        disk, store = make_store()
        p = store.add_batch(np.asarray([5, 1, 3]))
        np.testing.assert_array_equal(p.run.values, [1, 3, 5])

    def test_auto_step_numbering(self):
        disk, store = make_store()
        store.add_batch(batch(1))
        p = store.add_batch(batch(2))
        assert p.start_step == 2
        assert store.steps_loaded == 2

    def test_total_elements(self):
        disk, store = make_store()
        for s in range(1, 4):
            store.add_batch(batch(s, size=50))
        assert store.total_elements() == 150


class TestMergeSemantics:
    def test_level_never_exceeds_kappa(self):
        disk, store = make_store(kappa=3)
        for s in range(1, 30):
            store.add_batch(batch(s))
            store.check_invariant()
            for level_idx in range(store.num_levels):
                assert len(store.level(level_idx)) <= 3

    def test_merge_before_add(self):
        # kappa=2: steps 1,2 fill level 0; step 3 first merges (1,2)
        # up, then adds 3 at level 0.
        disk, store = make_store(kappa=2)
        for s in range(1, 4):
            store.add_batch(batch(s))
        level0 = store.level(0)
        level1 = store.level(1)
        assert [p.start_step for p in level0] == [3]
        assert [(p.start_step, p.end_step) for p in level1] == [(1, 2)]

    def test_cascade_merges_upward(self):
        # kappa=2: level 1 fills with (1,2), (3,4); arrival of step 7
        # (level 0 holding 5,6) cascades: level1 -> level2 first.
        disk, store = make_store(kappa=2)
        for s in range(1, 8):
            store.add_batch(batch(s))
        assert [(p.start_step, p.end_step) for p in store.level(2)] == [(1, 4)]
        assert [(p.start_step, p.end_step) for p in store.level(1)] == [(5, 6)]
        assert [p.start_step for p in store.level(0)] == [7]

    def test_partitions_chronological(self):
        disk, store = make_store(kappa=3)
        for s in range(1, 20):
            store.add_batch(batch(s))
        ordered = store.partitions()
        starts = [p.start_step for p in ordered]
        ends = [p.end_step for p in ordered]
        assert starts[0] == 1
        assert ends[-1] == 19
        for prev_end, nxt_start in zip(ends, starts[1:]):
            assert nxt_start == prev_end + 1

    def test_merged_data_preserved(self):
        disk, store = make_store(kappa=2)
        total = []
        for s in range(1, 10):
            data = np.arange(s * 10, s * 10 + 20)
            total.append(data)
            store.add_batch(data, step=s)
        stored = np.sort(
            np.concatenate([p.run.values for p in store.partitions()])
        )
        np.testing.assert_array_equal(stored, np.sort(np.concatenate(total)))

    def test_figure8_disk_access_pattern_kappa9(self):
        """The paper's Figure 8 counts, reproduced exactly.

        kappa=9, batches of 10 000 blocks: 89 plain steps at 10K
        accesses, 10 steps with a level-0 merge at 190K, and one step
        with a double merge at 1810K.
        """
        disk = SimulatedDisk(block_elems=10)
        store = LeveledStore(disk, kappa=9)
        counts = {}
        for s in range(1, 101):
            before = disk.stats.counters.snapshot()
            store.add_batch(np.zeros(100_000, dtype=np.int64), step=s)
            total = disk.stats.counters.delta_since(before).total
            counts[total] = counts.get(total, 0) + 1
        assert counts == {10_000: 89, 190_000: 10, 1_810_000: 1}

    def test_figure8_disk_access_pattern_kappa7(self):
        """kappa=7: the paper reports a 1130K double-merge step."""
        disk = SimulatedDisk(block_elems=10)
        store = LeveledStore(disk, kappa=7)
        totals = []
        for s in range(1, 101):
            before = disk.stats.counters.snapshot()
            store.add_batch(np.zeros(100_000, dtype=np.int64), step=s)
            totals.append(disk.stats.counters.delta_since(before).total)
        assert max(totals) == 1_130_000
        assert totals.count(10_000) > 80

    def test_merge_io_is_one_pass(self):
        disk, store = make_store(kappa=2, block_elems=10)
        store.add_batch(np.zeros(100), step=1)  # 10 blocks
        store.add_batch(np.zeros(100), step=2)
        before = disk.stats.counters.snapshot()
        store.add_batch(np.zeros(100), step=3)  # merges (1,2) first
        delta = disk.stats.counters.delta_since(before)
        # merge: read 20 + write 20; add: write 10
        assert delta.sequential_reads == 20
        assert delta.sequential_writes == 30


class TestSummaryBuilder:
    def test_builder_called_for_every_partition(self):
        disk = SimulatedDisk(block_elems=10)
        seen = []
        store = LeveledStore(
            disk, kappa=2, summary_builder=lambda p: seen.append(p) or len(p)
        )
        for s in range(1, 4):
            store.add_batch(batch(s, size=10))
        # three level-0 partitions plus one merged partition
        assert len(seen) == 4
        for p in store.partitions():
            assert p.summary == len(p)


class TestWindows:
    def test_window_sizes_are_suffix_sums(self):
        disk, store = make_store(kappa=2)
        for s in range(1, 8):
            store.add_batch(batch(s))
        # partitions: (1-4) at L2, (5-6) at L1, (7) at L0
        assert store.available_window_sizes() == [1, 3, 7]

    def test_window_partitions_aligned(self):
        disk, store = make_store(kappa=2)
        for s in range(1, 8):
            store.add_batch(batch(s))
        window = store.window_partitions(3)
        assert [(p.start_step, p.end_step) for p in window] == [(5, 6), (7, 7)]

    def test_window_partitions_unaligned_returns_none(self):
        disk, store = make_store(kappa=2)
        for s in range(1, 8):
            store.add_batch(batch(s))
        assert store.window_partitions(2) is None
        assert store.window_partitions(4) is None

    def test_window_zero_is_empty(self):
        disk, store = make_store()
        store.add_batch(batch(1))
        assert store.window_partitions(0) == []

    def test_window_larger_than_history(self):
        disk, store = make_store()
        store.add_batch(batch(1))
        assert store.window_partitions(5) is None

    def test_full_window_always_available(self):
        disk, store = make_store(kappa=2)
        for s in range(1, 12):
            store.add_batch(batch(s))
        window = store.window_partitions(11)
        assert window is not None
        assert sum(p.num_steps for p in window) == 11


class TestStoreProperty:
    @given(
        kappa=st.integers(2, 5),
        steps=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_for_any_schedule(self, kappa, steps):
        disk = SimulatedDisk(block_elems=7)
        store = LeveledStore(disk, kappa=kappa)
        for s in range(1, steps + 1):
            store.add_batch(np.full(13, s, dtype=np.int64), step=s)
        store.check_invariant()
        assert store.total_elements() == steps * 13
        # full-history window is always aligned
        assert store.window_partitions(steps) is not None
        # window sizes are strictly increasing suffix sums ending at steps
        sizes = store.available_window_sizes()
        assert sizes == sorted(sizes)
        assert sizes[-1] == steps
