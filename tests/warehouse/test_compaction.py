"""Tests for the leveled compaction policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import SimulatedDisk
from repro.warehouse import LeveledCompactionStore, LeveledStore


def make_store(kappa=3, block_elems=10):
    disk = SimulatedDisk(block_elems=block_elems)
    return disk, LeveledCompactionStore(disk, kappa=kappa)


def batch(step, size=100):
    return np.full(size, step, dtype=np.int64)


class TestLeveledCompaction:
    def test_one_partition_per_deep_level(self):
        disk, store = make_store(kappa=3)
        for s in range(1, 30):
            store.add_batch(batch(s))
            store.check_invariant()
            for level_index in range(1, store.num_levels):
                assert len(store.level(level_index)) <= 1

    def test_level0_buffers_up_to_kappa(self):
        disk, store = make_store(kappa=3)
        for s in range(1, 4):
            store.add_batch(batch(s))
        assert len(store.level(0)) == 3

    def test_merge_into_resident(self):
        disk, store = make_store(kappa=2)
        for s in range(1, 6):
            store.add_batch(batch(s))
        # steps 1-2 merged to L1; steps 3-4 merged INTO it -> (1-4)
        assert [(p.start_step, p.end_step) for p in store.level(1)] == [
            (1, 4)
        ]
        assert [p.start_step for p in store.level(0)] == [5]

    def test_data_preserved(self):
        disk, store = make_store(kappa=2)
        total = []
        for s in range(1, 12):
            data = np.arange(s * 10, s * 10 + 25)
            total.append(data)
            store.add_batch(data, step=s)
        stored = np.sort(
            np.concatenate([p.run.values for p in store.partitions()])
        )
        np.testing.assert_array_equal(stored, np.sort(np.concatenate(total)))

    def test_fewer_partitions_than_tiered(self):
        rng = np.random.default_rng(0)
        counts = {}
        for cls in (LeveledStore, LeveledCompactionStore):
            disk = SimulatedDisk(block_elems=10)
            store = cls(disk, kappa=4)
            for s in range(1, 60):
                store.add_batch(rng.integers(0, 1000, 100), step=s)
            counts[cls.__name__] = store.partition_count()
        assert (
            counts["LeveledCompactionStore"] <= counts["LeveledStore"]
        )

    def test_more_update_io_than_tiered(self):
        """Leveled compaction's write amplification."""
        totals = {}
        for cls in (LeveledStore, LeveledCompactionStore):
            disk = SimulatedDisk(block_elems=10)
            store = cls(disk, kappa=3)
            for s in range(1, 50):
                store.add_batch(np.zeros(100, dtype=np.int64), step=s)
            totals[cls.__name__] = disk.stats.counters.total
        assert (
            totals["LeveledCompactionStore"] >= totals["LeveledStore"]
        )

    def test_windows_still_available(self):
        disk, store = make_store(kappa=2)
        for s in range(1, 8):
            store.add_batch(batch(s))
        sizes = store.available_window_sizes()
        assert sizes[-1] == 7
        for size in sizes:
            assert store.window_partitions(size) is not None

    def test_engine_integration(self):
        from repro import EngineConfig, ExactQuantiles, HybridQuantileEngine

        config = EngineConfig(
            epsilon=0.05, kappa=3, block_elems=16, compaction="leveled"
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(7)
        oracle = ExactQuantiles()
        for _ in range(9):
            data = rng.integers(0, 10**6, 1000)
            oracle.update_batch(data)
            engine.stream_update_batch(data)
            engine.end_time_step()
        live = rng.integers(0, 10**6, 1000)
        oracle.update_batch(live)
        engine.stream_update_batch(live)
        engine.check_invariants()
        result = engine.quantile(0.5)
        high = oracle.rank(result.value)
        low = oracle.rank_strict(result.value) + 1
        err = max(0, low - result.target_rank, result.target_rank - high)
        assert err <= 1.5 * 0.05 * 1000 + 2

    def test_config_rejects_unknown_policy(self):
        from repro import EngineConfig

        with pytest.raises(ValueError):
            EngineConfig(epsilon=0.1, compaction="mystery")


class TestCompactionProperty:
    @given(kappa=st.integers(2, 4), steps=st.integers(1, 45))
    @settings(max_examples=30, deadline=None)
    def test_invariants_any_schedule(self, kappa, steps):
        disk = SimulatedDisk(block_elems=7)
        store = LeveledCompactionStore(disk, kappa=kappa)
        for s in range(1, steps + 1):
            store.add_batch(np.full(11, s, dtype=np.int64), step=s)
        store.check_invariant()
        assert store.total_elements() == steps * 11
        assert store.window_partitions(steps) is not None
