"""Tests for the table renderer."""

from repro.evaluation import format_table
from repro.evaluation.reporting import format_cell


class TestFormatCell:
    def test_small_float_scientific(self):
        assert "e" in format_cell(1.23e-8)

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_medium_float_plain(self):
        assert format_cell(3.14159) == "3.142"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_int_and_str(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 123456]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equal width

    def test_header_rule(self):
        table = format_table(["x"], [[1]])
        assert set(table.splitlines()[1]) == {"-"}

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        import csv

        from repro.evaluation import write_csv

        path = tmp_path / "table.csv"
        write_csv(path, ["a", "b"], [[1, 2.5], ["x", -3]])
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2.5"], ["x", "-3"]]
