"""Tests for the benchmark harness's shared sizing helpers."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

import common  # noqa: E402  (benchmarks/common.py)


class TestScaleMapping:
    def test_accuracy_scale_shape(self):
        scale = common.accuracy_scale()
        assert scale.steps == 30
        assert scale.batch >= 1000
        assert scale.blocks_per_batch == -(-scale.batch // scale.block_elems)

    def test_io_scale_matches_paper_ratio(self):
        scale = common.io_scale()
        # 1 GB batches over 100 KB blocks = 10^4 blocks per batch
        assert scale.blocks_per_batch == 10_000 * common.SCALE or (
            common.SCALE != 1.0
        )
        assert scale.steps == 100

    def test_memory_words_proportions(self):
        scale = common.accuracy_scale()
        w100 = common.memory_words(100, scale)
        w500 = common.memory_words(500, scale)
        assert w500 == 5 * w100
        # 100 MB of 1 GB = 10% of the batch, in words
        assert w100 == int(0.1 * scale.batch)

    def test_all_workloads_panel_order(self):
        names = [w.name for w in common.all_workloads()]
        assert names == ["uniform", "normal", "wikipedia", "network"]


def _valid_doc():
    return {
        "benchmark": "demo",
        "meta": {
            "shards": 1,
            "sketch_backend": "gk",
            "storage_backend": "simulated",
            "object_tier": False,
        },
        "rows": [{"x": 1}],
    }


class TestBenchSchema:
    def test_valid_doc_passes(self):
        common.validate_bench_doc(_valid_doc())

    def test_missing_storage_backend_rejected(self):
        doc = _valid_doc()
        del doc["meta"]["storage_backend"]
        try:
            common.validate_bench_doc(doc)
        except ValueError as exc:
            assert "storage_backend" in str(exc)
        else:
            raise AssertionError("schema accepted missing storage_backend")

    def test_unknown_storage_backend_rejected(self):
        doc = _valid_doc()
        doc["meta"]["storage_backend"] = "tape"
        try:
            common.validate_bench_doc(doc)
        except ValueError as exc:
            assert "storage_backend" in str(exc)
        else:
            raise AssertionError("schema accepted unknown storage_backend")

    def test_object_tier_must_be_bool(self):
        doc = _valid_doc()
        doc["meta"]["object_tier"] = "yes"
        try:
            common.validate_bench_doc(doc)
        except ValueError as exc:
            assert "object_tier" in str(exc)
        else:
            raise AssertionError("schema accepted non-bool object_tier")

    def test_committed_artifacts_match_schema(self):
        for path in sorted(common.BENCH_DIR.glob("BENCH_*.json")):
            common.validate_bench_doc(json.loads(path.read_text()))


class TestEngineFactories:
    def test_hybrid_engine_budgeted(self):
        scale = common.accuracy_scale()
        engine = common.hybrid_engine(8000, scale, kappa=5)
        assert engine.config.kappa == 5
        assert 0 < engine.config.epsilon2 < engine.config.epsilon1

    def test_gk_engine_kind(self):
        scale = common.accuracy_scale()
        engine = common.gk_engine(8000, scale)
        assert engine.kind == "gk"
        assert 0 < engine.epsilon < 0.5

    def test_qdigest_engine_kind(self):
        scale = common.accuracy_scale()
        engine = common.qdigest_engine(8000, scale, universe_log2=30)
        assert engine.kind == "qdigest"
