"""Integration tests for the experiment runner."""

import math

from repro import HybridQuantileEngine, PureStreamingEngine
from repro.evaluation import ExperimentRunner
from repro.workloads import UniformWorkload


def small_runner(steps=4, batch=1200):
    return ExperimentRunner(
        workload=UniformWorkload(seed=3),
        num_steps=steps,
        batch_elems=batch,
    )


class TestExperimentRunner:
    def test_runs_multiple_engines(self):
        runner = small_runner()
        result = runner.run(
            {
                "ours": HybridQuantileEngine(
                    epsilon=0.02, kappa=3, block_elems=16
                ),
                "gk": PureStreamingEngine(kind="gk", epsilon=0.02),
            },
            phis=(0.25, 0.5, 0.75),
        )
        assert set(result.runs) == {"ours", "gk"}
        assert len(result["ours"].step_reports) == 4
        assert len(result["ours"].queries) == 3

    def test_engines_see_identical_data(self):
        runner = small_runner()
        a = HybridQuantileEngine(epsilon=0.02, kappa=3, block_elems=16)
        b = HybridQuantileEngine(epsilon=0.02, kappa=3, block_elems=16)
        result = runner.run({"a": a, "b": b}, phis=(0.5,))
        assert a.n_total == b.n_total
        assert result["a"].queries[0].result.value == (
            result["b"].queries[0].result.value
        )

    def test_oracle_covers_everything(self):
        runner = small_runner(steps=3, batch=500)
        runner.run(
            {"ours": HybridQuantileEngine(epsilon=0.05, kappa=3,
                                          block_elems=16)},
            phis=(0.5,),
        )
        assert runner.oracle.n == 4 * 500  # 3 steps + live stream

    def test_hybrid_beats_streaming_on_accuracy(self):
        """The paper's headline claim at small scale."""
        runner = ExperimentRunner(
            workload=UniformWorkload(seed=11),
            num_steps=8,
            batch_elems=4000,
        )
        result = runner.run(
            {
                "ours": HybridQuantileEngine(
                    epsilon=0.01, kappa=3, block_elems=16
                ),
                "gk": PureStreamingEngine(kind="gk", epsilon=0.01),
            },
            phis=(0.25, 0.5, 0.75),
        )
        ours = result["ours"].mean_relative_error
        gk = result["gk"].mean_relative_error
        assert ours <= gk

    def test_engine_run_aggregates(self):
        runner = small_runner()
        result = runner.run(
            {"ours": HybridQuantileEngine(epsilon=0.05, kappa=3,
                                          block_elems=16)},
            phis=(0.5, 0.9),
        )
        run = result["ours"]
        assert run.mean_update_io > 0
        assert not math.isnan(run.median_relative_error)
        assert run.max_relative_error >= run.median_relative_error
        assert len(run.update_io_per_step()) == 4
        breakdown = run.mean_update_seconds()
        assert set(breakdown) >= {"load", "sort", "merge", "summary"}

    def test_custom_query_modes(self):
        runner = small_runner(steps=2, batch=500)
        result = runner.run(
            {
                "quick": HybridQuantileEngine(
                    epsilon=0.05, kappa=3, block_elems=16
                ),
            },
            phis=(0.5,),
            query_modes={"quick": "quick"},
        )
        assert result["quick"].queries[0].result.mode == "quick"
        assert result["quick"].queries[0].result.disk_accesses == 0
