"""Tests for the accuracy metrics."""

from repro import ExactQuantiles
from repro.core.engine import QueryResult
from repro.evaluation import measure, rank_error_is_inherent


def make_result(value, target_rank, total=100):
    return QueryResult(
        value=value,
        target_rank=target_rank,
        total_size=total,
        mode="accurate",
        estimated_rank=float(target_rank),
        disk_accesses=0,
        iterations=0,
        truncated=False,
        wall_seconds=0.0,
        sim_seconds=0.0,
    )


class TestMeasure:
    def test_exact_answer_has_zero_error(self):
        oracle = ExactQuantiles()
        oracle.update_batch(range(1, 101))
        accuracy = measure(make_result(value=50, target_rank=50), oracle)
        assert accuracy.rank_error == 0
        assert accuracy.relative_error == 0.0

    def test_off_by_k(self):
        oracle = ExactQuantiles()
        oracle.update_batch(range(1, 101))
        accuracy = measure(make_result(value=57, target_rank=50), oracle)
        assert accuracy.rank_error == 7
        assert accuracy.relative_error == 7 / 50

    def test_duplicates_span_is_error_free(self):
        """Any target rank inside a duplicate run counts as exact."""
        oracle = ExactQuantiles()
        oracle.update_batch([1] * 10 + [2] * 80 + [3] * 10)
        for target in (11, 50, 90):
            accuracy = measure(make_result(value=2, target_rank=target), oracle)
            assert accuracy.rank_error == 0

    def test_duplicates_outside_span(self):
        oracle = ExactQuantiles()
        oracle.update_batch([1] * 10 + [2] * 80 + [3] * 10)
        accuracy = measure(make_result(value=2, target_rank=95), oracle)
        assert accuracy.rank_error == 5

    def test_phi_property(self):
        result = make_result(value=1, target_rank=50, total=100)
        assert result.phi == 0.5


class TestRankErrorIsInherent:
    def test_exact_element_detected(self):
        oracle = ExactQuantiles()
        oracle.update_batch([10, 20, 30])
        assert rank_error_is_inherent(make_result(20, 2), oracle)
        assert not rank_error_is_inherent(make_result(30, 2), oracle)
