"""Tests for the theoretical-bound formulas."""

import pytest

from repro.evaluation import (
    accurate_relative_error_bound,
    memory_words_bound,
    query_disk_accesses_bound,
    quick_relative_error_bound,
    section_2_4_example,
    update_disk_accesses_bound,
)


class TestBounds:
    def test_accurate_bound_shrinks_with_history(self):
        small = accurate_relative_error_bound(0.01, 10**6, 0.5, 10**7)
        large = accurate_relative_error_bound(0.01, 10**6, 0.5, 10**8)
        assert large < small

    def test_accurate_bound_linear_in_stream(self):
        a = accurate_relative_error_bound(0.01, 10**5, 0.5, 10**8)
        b = accurate_relative_error_bound(0.01, 2 * 10**5, 0.5, 10**8)
        assert b == pytest.approx(2 * a)

    def test_accurate_bound_validation(self):
        with pytest.raises(ValueError):
            accurate_relative_error_bound(0.01, 10, 0.5, 0)

    def test_quick_bound_constant_in_n(self):
        assert quick_relative_error_bound(0.01, 0.5) == pytest.approx(0.03)

    def test_memory_bound_decreases_with_epsilon(self):
        assert memory_words_bound(0.01, 10**6, 10, 100) > memory_words_bound(
            0.1, 10**6, 10, 100
        )

    def test_update_bound_amortizes_over_steps(self):
        few = update_disk_accesses_bound(10**8, 10**4, 10, 10)
        many = update_disk_accesses_bound(10**8, 10**4, 10, 1000)
        assert many < few

    def test_query_bound_grows_with_history(self):
        small = query_disk_accesses_bound(10**7, 10**4, 10, 100, 30)
        large = query_disk_accesses_bound(10**9, 10**4, 10, 100, 30)
        assert large > small


class TestWorkedExample:
    def test_section_2_4_magnitudes(self):
        """Paper: ~10^6 accesses/day (~1000 s), a few hundred per query."""
        example = section_2_4_example()
        assert 10**5 < example.update_accesses_per_day < 10**7
        assert 100 < example.update_seconds_per_day < 10_000
        assert 50 < example.query_accesses < 5000
