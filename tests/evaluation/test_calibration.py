"""Tests pinning the memory models to measured sketch footprints.

If these bands break, a sketch implementation change has shifted its
memory footprint and the models in ``repro.core.memory`` (which size
every benchmark contender) must be re-fit — see
``repro.evaluation.calibration``.
"""

from repro.evaluation.calibration import calibrate_gk, calibrate_qdigest


class TestGKCalibration:
    def test_model_within_band(self):
        for point in calibrate_gk(
            epsilons=(0.02, 0.005), sizes=(50_000, 300_000)
        ):
            assert 0.7 <= point.ratio <= 2.0, point

    def test_model_never_wildly_small(self):
        """Under-modelling would hand the baseline extra memory."""
        for point in calibrate_gk(epsilons=(0.01,), sizes=(100_000,)):
            assert point.ratio >= 0.6, point


class TestQDigestCalibration:
    def test_model_within_band(self):
        for point in calibrate_qdigest(
            epsilons=(0.02, 0.005), sizes=(50_000, 300_000)
        ):
            assert 0.6 <= point.ratio <= 1.6, point
