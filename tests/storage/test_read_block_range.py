"""Direct unit tests for ``SortedRun.read_block_range`` edge cases.

The ranged read is the batched counterpart of per-block probing
(residual fetches, accurate-path prefetch).  These tests pin the
clamping behaviour at the boundaries: inverted ranges, ranges entirely
past the end of the run, empty runs, and partial trailing blocks must
return exactly the stored elements and charge exactly the clamped
block count — zero for a range that touches nothing.
"""

import numpy as np
import pytest

from repro.storage import BlockCache, SimulatedDisk, SortedRun


def make_run(n, block_elems=4):
    disk = SimulatedDisk(block_elems=block_elems)
    run = SortedRun(disk, np.arange(n, dtype=np.int64))
    return disk, run


def random_reads(disk):
    return disk.stats.counters.random_reads


class TestClamping:
    def test_full_range(self):
        disk, run = make_run(12, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(0, 2)
        np.testing.assert_array_equal(out, np.arange(12))
        assert random_reads(disk) - before == 3

    def test_partial_trailing_block(self):
        # 10 elements over 4-element blocks: block 2 holds only 8..9.
        disk, run = make_run(10, block_elems=4)
        out = run.read_block_range(2, 2)
        np.testing.assert_array_equal(out, [8, 9])

    def test_range_past_end_is_clamped(self):
        disk, run = make_run(10, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(1, 99)
        np.testing.assert_array_equal(out, np.arange(4, 10))
        # Blocks 1 and 2 exist; the rest of the range charges nothing.
        assert random_reads(disk) - before == 2

    def test_range_entirely_past_end_charges_nothing(self):
        disk, run = make_run(10, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(7, 9)
        assert out.size == 0
        assert out.dtype == np.int64
        assert random_reads(disk) == before

    def test_negative_first_block_clamps_to_zero(self):
        disk, run = make_run(8, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(-3, 0)
        np.testing.assert_array_equal(out, np.arange(4))
        assert random_reads(disk) - before == 1

    def test_inverted_range_is_empty(self):
        disk, run = make_run(8, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(2, 1)
        assert out.size == 0
        assert random_reads(disk) == before

    def test_empty_run_reads_nothing(self):
        disk, run = make_run(0, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(0, 5)
        assert out.size == 0
        assert out.dtype == np.int64
        assert random_reads(disk) == before

    def test_fully_negative_range_is_empty(self):
        disk, run = make_run(8, block_elems=4)
        before = random_reads(disk)
        out = run.read_block_range(-5, -2)
        assert out.size == 0
        assert random_reads(disk) == before


class TestCacheInteraction:
    def test_cached_blocks_charge_nothing_on_reread(self):
        disk, run = make_run(16, block_elems=4)
        cache = BlockCache(disk)
        run.read_block_range(0, 3, cache=cache)
        before = random_reads(disk)
        out = run.read_block_range(0, 3, cache=cache)
        np.testing.assert_array_equal(out, np.arange(16))
        assert random_reads(disk) == before

    def test_partial_overlap_charges_only_new_blocks(self):
        disk, run = make_run(16, block_elems=4)
        cache = BlockCache(disk)
        run.read_block_range(0, 1, cache=cache)
        before = random_reads(disk)
        run.read_block_range(0, 3, cache=cache)
        assert random_reads(disk) - before == 2

    def test_matches_per_block_charges(self):
        """A ranged read charges exactly what per-block probes would."""
        disk_a, run_a = make_run(20, block_elems=4)
        disk_b, run_b = make_run(20, block_elems=4)
        before_a = random_reads(disk_a)
        before_b = random_reads(disk_b)
        ranged = run_a.read_block_range(1, 3)
        singles = np.concatenate(
            [run_b.read_block_range(b, b) for b in (1, 2, 3)]
        )
        np.testing.assert_array_equal(ranged, singles)
        assert (
            random_reads(disk_a) - before_a
            == random_reads(disk_b) - before_b
        )


class TestContentCorrectness:
    @pytest.mark.parametrize("n", [1, 3, 4, 5, 7, 8, 9, 16, 17])
    @pytest.mark.parametrize("block_elems", [1, 3, 4])
    def test_every_block_reads_its_elements(self, n, block_elems):
        disk, run = make_run(n, block_elems=block_elems)
        last = disk.block_of(n - 1)
        for block in range(last + 1):
            lo = block * block_elems
            hi = min(lo + block_elems, n)
            np.testing.assert_array_equal(
                run.read_block_range(block, block), np.arange(lo, hi)
            )
