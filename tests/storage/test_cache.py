"""Tests for the per-query block cache."""

import threading

from repro.storage import BlockCache, SimulatedDisk


class TestBlockCache:
    def test_first_touch_charges(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 1
        assert cache.blocks_charged == 1

    def test_repeat_touch_free(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 0)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 1

    def test_distinct_runs_charged_separately(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 0)
        cache.touch(2, 0)
        assert disk.stats.counters.random_reads == 2

    def test_disabled_cache_charges_every_touch(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk, enabled=False)
        cache.touch(1, 0)
        cache.touch(1, 0)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 3

    def test_touch_range(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch_range(1, 2, 5)
        assert disk.stats.counters.random_reads == 4
        cache.touch_range(1, 4, 6)  # 4, 5 already cached
        assert disk.stats.counters.random_reads == 5

    def test_touch_range_partial_hits_charge_only_misses(self):
        # Blocks 3 and 5 cached; requesting 2..6 must charge exactly
        # the holes (2, 4, 6), never the resident blocks.
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 3)
        cache.touch(1, 5)
        assert disk.stats.counters.random_reads == 2
        charged = cache.touch_range(1, 2, 6)
        assert charged == 3
        assert disk.stats.counters.random_reads == 5
        # The whole range is now resident: a re-request is free.
        assert cache.touch_range(1, 2, 6) == 0
        assert disk.stats.counters.random_reads == 5

    def test_touch_range_partial_hits_through_shared_tier(self):
        # Same shape with a shared tier behind the per-query cache:
        # the holes reach the shared cache as one ranged read per
        # contiguous unseen sub-range (three singleton ranges here),
        # and the charged block count still excludes the hits.
        from repro.storage import SharedBlockCache

        disk = SimulatedDisk()
        shared = SharedBlockCache(64)
        cache = BlockCache(disk, shared=shared)
        cache.touch(1, 3)
        cache.touch(1, 5)
        calls = []
        original = disk.charge_random_read

        def spying_charge(blocks):
            calls.append(blocks)
            original(blocks)

        disk.charge_random_read = spying_charge
        charged = cache.touch_range(1, 2, 6)
        assert charged == 3
        assert disk.stats.counters.random_reads == 5
        # Three disjoint holes -> three ranged reads of one block each.
        assert calls == [1, 1, 1]

    def test_touch_range_shared_residency_is_free_for_new_query(self):
        # A second query's fresh BlockCache finds the shared tier
        # already resident: shared hits, zero new charges.
        from repro.storage import SharedBlockCache

        disk = SimulatedDisk()
        shared = SharedBlockCache(64)
        first = BlockCache(disk, shared=shared)
        first.touch_range(1, 2, 6)
        assert disk.stats.counters.random_reads == 5
        second = BlockCache(disk, shared=shared)
        assert second.touch_range(1, 2, 6) == 0
        assert second.shared_hits == 5
        assert disk.stats.counters.random_reads == 5


class TestBlockCacheConcurrency:
    """Counter updates are atomic: no charge is lost or duplicated."""

    RUNS = 4
    BLOCKS = 50
    THREADS = 8

    def _hammer(self, cache):
        barrier = threading.Barrier(self.THREADS)

        def worker(seed):
            barrier.wait()
            # Every thread touches every (run, block) pair, offset so
            # the interleavings differ, racing the dedup check.
            for i in range(self.RUNS * self.BLOCKS):
                j = (i + seed) % (self.RUNS * self.BLOCKS)
                cache.touch(j // self.BLOCKS, j % self.BLOCKS)

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_concurrent_touches_charge_each_block_once(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        self._hammer(cache)
        unique = self.RUNS * self.BLOCKS
        assert cache.blocks_charged == unique
        assert disk.stats.counters.random_reads == unique
        assert sum(cache.blocks_per_run.values()) == unique
        assert cache.max_blocks_per_run() == self.BLOCKS

    def test_disabled_cache_counts_every_concurrent_touch(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk, enabled=False)
        self._hammer(cache)
        total = self.THREADS * self.RUNS * self.BLOCKS
        assert cache.blocks_charged == total
        assert disk.stats.counters.random_reads == total
