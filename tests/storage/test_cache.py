"""Tests for the per-query block cache."""

from repro.storage import BlockCache, SimulatedDisk


class TestBlockCache:
    def test_first_touch_charges(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 1
        assert cache.blocks_charged == 1

    def test_repeat_touch_free(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 0)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 1

    def test_distinct_runs_charged_separately(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch(1, 0)
        cache.touch(2, 0)
        assert disk.stats.counters.random_reads == 2

    def test_disabled_cache_charges_every_touch(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk, enabled=False)
        cache.touch(1, 0)
        cache.touch(1, 0)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 3

    def test_touch_range(self):
        disk = SimulatedDisk()
        cache = BlockCache(disk)
        cache.touch_range(1, 2, 5)
        assert disk.stats.counters.random_reads == 4
        cache.touch_range(1, 4, 6)  # 4, 5 already cached
        assert disk.stats.counters.random_reads == 5
