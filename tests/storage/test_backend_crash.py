"""Crash-safety tests for the file-backed storage backends.

The fsutil crash hook freezes an atomic write at a named point —
kill-after-write (a ``.tmp`` holding the new content, final name
untouched) or kill-before-rename (the ``.tmp`` fsynced but never
renamed) — and the tests prove the recovery contract: previously
committed runs survive untouched, and :meth:`MmapFileBackend.fsck`
(which every backend start runs) removes exactly the staging orphans.

Crash points are chosen by a seeded :class:`~repro.faults.FaultPlan`,
the same deterministic schedule machinery the rest of the fault suite
uses, so each scenario replays identically from its seed.
"""

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.storage import MmapFileBackend, ObjectStoreBackend
from repro.storage import fsutil
from repro.storage.fsutil import (
    STAGE_SUFFIX,
    WRITE_CRASH_POINTS,
    SimulatedCrash,
    atomic_write_bytes,
)


class CrashAt:
    """Hook that dies the first time the write reaches ``point``."""

    def __init__(self, point):
        assert point in WRITE_CRASH_POINTS
        self.point = point
        self.fired = False

    def __call__(self, point):
        if point == self.point and not self.fired:
            self.fired = True
            raise SimulatedCrash(point)


@pytest.fixture(autouse=True)
def _clean_hook():
    yield
    fsutil.crash_hook = None


def crash_point_for(plan: FaultPlan, index: int) -> str:
    """Map one seeded plan draw to a crash point (reproducible choice)."""
    draw = plan._draw(index)
    return WRITE_CRASH_POINTS[int(draw * len(WRITE_CRASH_POINTS))]


class TestAtomicWrite:
    def test_kill_after_write_preserves_old_content(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"old")
        fsutil.crash_hook = CrashAt("tmp-written")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new")
        fsutil.crash_hook = None
        assert target.read_bytes() == b"old"
        assert (tmp_path / ("blob" + STAGE_SUFFIX)).exists()

    def test_kill_before_rename_preserves_old_content(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"old")
        fsutil.crash_hook = CrashAt("tmp-synced")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new")
        fsutil.crash_hook = None
        assert target.read_bytes() == b"old"

    def test_kill_after_rename_commits_new_content(self, tmp_path):
        target = tmp_path / "blob"
        atomic_write_bytes(target, b"old")
        fsutil.crash_hook = CrashAt("renamed")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"new")
        fsutil.crash_hook = None
        # The rename is the commit point: content flipped atomically.
        assert target.read_bytes() == b"new"
        assert not (tmp_path / ("blob" + STAGE_SUFFIX)).exists()

    def test_remove_stale_stages_reports_removals(self, tmp_path):
        target = tmp_path / "blob"
        fsutil.crash_hook = CrashAt("tmp-written")
        with pytest.raises(SimulatedCrash):
            atomic_write_bytes(target, b"data")
        fsutil.crash_hook = None
        removed = fsutil.remove_stale_stages(tmp_path)
        assert [p.name for p in removed] == ["blob" + STAGE_SUFFIX]
        assert not list(tmp_path.iterdir())


class TestMmapBackendCrash:
    @pytest.mark.parametrize("point", ["tmp-written", "tmp-synced"])
    def test_pre_commit_crash_loses_only_inflight_run(self, tmp_path, point):
        committed = np.arange(32, dtype=np.int64)
        backend = MmapFileBackend(tmp_path / "runs")
        backend.allocate_run(1, committed)
        fsutil.crash_hook = CrashAt(point)
        with pytest.raises(SimulatedCrash):
            backend.allocate_run(2, np.arange(64, dtype=np.int64))
        fsutil.crash_hook = None
        backend.close()

        # "Reboot": a fresh backend over the same directory fscks away
        # the orphaned stage and still serves the committed run.
        recovered = MmapFileBackend(tmp_path / "runs")
        assert not list((tmp_path / "runs").glob(f"*{STAGE_SUFFIX}"))
        data = np.load(tmp_path / "runs" / "run-1.npy")
        np.testing.assert_array_equal(data, committed)
        assert not (tmp_path / "runs" / "run-2.npy").exists()
        recovered.close()

    def test_post_rename_crash_commits_the_run(self, tmp_path):
        backend = MmapFileBackend(tmp_path / "runs")
        fsutil.crash_hook = CrashAt("renamed")
        with pytest.raises(SimulatedCrash):
            backend.allocate_run(5, np.arange(16, dtype=np.int64))
        fsutil.crash_hook = None
        backend.close()
        recovered = MmapFileBackend(tmp_path / "runs")
        np.testing.assert_array_equal(
            np.load(tmp_path / "runs" / "run-5.npy"),
            np.arange(16, dtype=np.int64),
        )
        recovered.close()

    def test_fsck_matches_manual_recovery(self, tmp_path):
        """fsck removes exactly the stage files a manual sweep finds."""
        directory = tmp_path / "runs"
        backend = MmapFileBackend(directory)
        backend.allocate_run(1, np.arange(8, dtype=np.int64))
        fsutil.crash_hook = CrashAt("tmp-written")
        with pytest.raises(SimulatedCrash):
            backend.allocate_run(2, np.arange(8, dtype=np.int64))
        fsutil.crash_hook = None
        expected = sorted(p.name for p in directory.glob(f"*{STAGE_SUFFIX}"))
        assert expected  # the crash left an orphan to find
        removed = backend.fsck()
        assert sorted(p.name for p in removed) == expected
        assert backend.fsck() == []  # idempotent
        backend.close()


class TestObjectBackendCrash:
    def test_migration_crash_keeps_run_hot(self, tmp_path):
        data = np.arange(24, dtype=np.int64)
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        handle = backend.allocate_run(1, data)
        fsutil.crash_hook = CrashAt("tmp-synced")
        with pytest.raises(SimulatedCrash):
            backend.place_run(1, level=1)
        fsutil.crash_hook = None
        # The PUT never committed: the run is still hot and readable,
        # and no phantom object landed in the bucket.
        assert backend.stats().object_runs == 0
        np.testing.assert_array_equal(np.asarray(handle.data), data)
        backend.close()

        recovered = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        assert recovered.stats().object_runs == 0
        assert not list(
            (tmp_path / "o" / "objects").glob(f"*{STAGE_SUFFIX}")
        )
        recovered.place_run(1, level=1)  # retry completes the migration
        assert recovered.stats().object_runs == 1
        recovered.close()

    def test_migration_crash_after_put_leaves_dual_copy_fsck_repairs(
        self, tmp_path
    ):
        """Crash between the bucket PUT and the hot unlink.

        The rename committed the PUT, so the run exists in BOTH tiers.
        fsck must keep exactly one authoritative copy — the bucket one
        (the migration had committed) — and report the repair.
        """
        data = np.arange(24, dtype=np.int64)
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        backend.allocate_run(1, data)
        fsutil.crash_hook = CrashAt("renamed")
        with pytest.raises(SimulatedCrash):
            backend.place_run(1, level=1)
        fsutil.crash_hook = None
        backend.close()
        # The crash window left the run in both tiers.
        assert (tmp_path / "o" / "hot" / "run-1.npy").exists()
        assert (tmp_path / "o" / "objects" / "run-1.npy").exists()

        recovered = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        assert not (tmp_path / "o" / "hot" / "run-1.npy").exists()
        assert (tmp_path / "o" / "objects" / "run-1.npy").exists()
        assert any("duplicate" in line for line in recovered.fsck_report)
        assert recovered.stats().object_runs == 1
        np.testing.assert_array_equal(np.load(recovered._path_of(1)), data)
        assert recovered.fsck() == []  # idempotent
        recovered.close()


class TestPlannedCrashes:
    """FaultPlan-driven sweep: the crash point at each write is a pure
    function of (seed, write index), so every scenario replays."""

    def test_plan_chooses_deterministic_points(self):
        plan = FaultPlan(seed=42)
        points = [crash_point_for(plan, i) for i in range(10)]
        assert points == [crash_point_for(plan, i) for i in range(10)]
        assert set(points) <= set(WRITE_CRASH_POINTS)

    @pytest.mark.parametrize("seed", [7, 99, 1234])
    def test_seeded_crash_sweep_always_recovers(self, tmp_path, seed):
        plan = FaultPlan(seed=seed)
        directory = tmp_path / f"runs-{seed}"
        committed = {}
        for index in range(6):
            backend = MmapFileBackend(directory)
            data = np.arange(8 * (index + 1), dtype=np.int64)
            point = crash_point_for(plan, index)
            fsutil.crash_hook = CrashAt(point)
            try:
                backend.allocate_run(index, data)
                crashed = False
            except SimulatedCrash:
                crashed = True
            finally:
                fsutil.crash_hook = None
            # Everything up to the commit point is lost; everything
            # past it is durable — never a torn file either way.
            if not crashed or point == "renamed":
                committed[index] = data
            backend.close()

            recovered = MmapFileBackend(directory)
            assert not list(directory.glob(f"*{STAGE_SUFFIX}"))
            for run_id, expected in committed.items():
                np.testing.assert_array_equal(
                    np.load(directory / f"run-{run_id}.npy"), expected
                )
            recovered.close()
        assert committed  # at least the "renamed" crashes must commit
