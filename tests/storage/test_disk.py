"""Unit tests for the simulated block device."""

import numpy as np
import pytest

from repro.storage import SimulatedDisk
from repro.storage.stats import DiskLatencyModel


class TestBlockArithmetic:
    def test_blocks_for_exact_multiple(self):
        disk = SimulatedDisk(block_elems=10)
        assert disk.blocks_for(100) == 10

    def test_blocks_for_rounds_up(self):
        disk = SimulatedDisk(block_elems=10)
        assert disk.blocks_for(101) == 11
        assert disk.blocks_for(1) == 1

    def test_blocks_for_empty(self):
        disk = SimulatedDisk(block_elems=10)
        assert disk.blocks_for(0) == 0

    def test_block_of(self):
        disk = SimulatedDisk(block_elems=10)
        assert disk.block_of(0) == 0
        assert disk.block_of(9) == 0
        assert disk.block_of(10) == 1

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            SimulatedDisk(block_elems=0)


class TestCharging:
    def test_write_sequential_charges_blocks(self):
        disk = SimulatedDisk(block_elems=4)
        stored = disk.write_sequential(np.arange(10))
        assert disk.stats.counters.sequential_writes == 3
        assert len(stored) == 10

    def test_write_sequential_copies(self):
        disk = SimulatedDisk(block_elems=4)
        source = np.arange(10)
        stored = disk.write_sequential(source)
        source[0] = 999
        assert stored[0] == 0

    def test_read_sequential_charges_blocks(self):
        disk = SimulatedDisk(block_elems=4)
        data = np.arange(12)
        disk.read_sequential(data)
        assert disk.stats.counters.sequential_reads == 3

    def test_random_read_charge(self):
        disk = SimulatedDisk(block_elems=4)
        disk.charge_random_read(5)
        assert disk.stats.counters.random_reads == 5

    def test_simulated_seconds_uses_latency_model(self):
        disk = SimulatedDisk(
            block_elems=4,
            latency=DiskLatencyModel(
                seconds_per_sequential_block=1.0,
                seconds_per_random_block=10.0,
            ),
        )
        disk.charge_sequential_write(8)  # 2 blocks
        disk.charge_random_read(1)
        assert disk.simulated_seconds() == pytest.approx(12.0)
