"""Hot-tier eviction tests (ISSUE 10, tentpole part 4).

``hot_tier_bytes`` capacity-bounds the object backend's hot file
tier: over budget, least-recently-read unpinned runs are demoted to
the bucket through the same atomic migration as ``place_run``.  The
invariants under test: a run pinned by a live snapshot is never
evicted (the tier overshoots instead), evicted-then-reprobed runs
return bit-identical data, and pressure-evicted runs are re-admitted
when the tiering policy places them back at a hot level.
"""

import threading

import numpy as np
import pytest

from repro import EngineConfig, HybridQuantileEngine
from repro.storage import ObjectStoreBackend, SimulatedDisk, SortedRun


def _run_bytes(backend, n_elems=64):
    """On-disk size of one n-elem run file under this backend."""
    probe = backend.allocate_run(999_999, np.arange(n_elems, dtype=np.int64))
    size = backend._path_of(999_999).stat().st_size
    backend.delete_run(999_999)
    return size


class TestCapacityEviction:
    def test_over_budget_demotes_lru(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        size = _run_bytes(backend)
        backend.close()
        # Budget for exactly two resident runs.
        backend = ObjectStoreBackend(
            tmp_path / "o2", object_tier_level=1, hot_tier_bytes=2 * size
        )
        for run_id in range(4):
            backend.allocate_run(
                run_id, np.arange(64, dtype=np.int64) + run_id
            )
        stats = backend.stats()
        assert stats.hot_bytes <= 2 * size
        assert stats.evicted_runs == 2
        # Least-recently-used first: runs 0 and 1 went to the bucket.
        assert (tmp_path / "o2" / "objects" / "run-0.npy").exists()
        assert (tmp_path / "o2" / "objects" / "run-1.npy").exists()
        assert (tmp_path / "o2" / "hot" / "run-2.npy").exists()
        assert (tmp_path / "o2" / "hot" / "run-3.npy").exists()
        backend.close()

    def test_evicted_run_reads_bit_identical(self, tmp_path):
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=1, hot_tier_bytes=0
        )
        disk = SimulatedDisk(block_elems=8, backend=backend)
        run = SortedRun(disk, np.arange(128, dtype=np.int64))
        before = run.read_block_range(3, 9)
        # hot_tier_bytes=0 evicts immediately after allocation.
        assert backend.stats().evicted_runs >= 1
        assert run.tier == "object"
        after = run.read_block_range(3, 9)
        np.testing.assert_array_equal(before, after)
        assert run.element_at(100) == 100
        backend.close()

    def test_unbounded_by_default(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        for run_id in range(6):
            backend.allocate_run(run_id, np.arange(64, dtype=np.int64))
        stats = backend.stats()
        assert stats.evicted_runs == 0
        assert stats.hot_runs == 6
        backend.close()

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ObjectStoreBackend(tmp_path / "o", hot_tier_bytes=-1)


class TestPinSafety:
    def test_pinned_run_never_evicted(self, tmp_path):
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=1, hot_tier_bytes=0
        )
        data = np.arange(64, dtype=np.int64)
        backend.pin_runs([1])
        backend.allocate_run(1, data)
        # Zero budget, but the pinned run must stay hot (overage is
        # tolerated rather than breaking a pinned reader).
        assert (tmp_path / "o" / "hot" / "run-1.npy").exists()
        assert backend.stats().evicted_runs == 0
        # Unpinned runs under the same pressure are demoted.
        backend.allocate_run(2, data)
        assert (tmp_path / "o" / "objects" / "run-2.npy").exists()
        # Releasing the last pin re-exposes the run to future scans.
        backend.unpin_runs([1])
        backend.allocate_run(3, data)  # pressure triggers another scan
        assert (tmp_path / "o" / "objects" / "run-1.npy").exists()
        backend.close()

    def test_pin_refcounting(self, tmp_path):
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=1, hot_tier_bytes=0
        )
        backend.pin_runs([1])
        backend.pin_runs([1])
        backend.allocate_run(1, np.arange(8, dtype=np.int64))
        backend.unpin_runs([1])  # one pin remains
        backend.allocate_run(2, np.arange(8, dtype=np.int64))
        assert (tmp_path / "o" / "hot" / "run-1.npy").exists()
        backend.close()


class TestReadmission:
    def test_evicted_run_promoted_on_hot_placement(self, tmp_path):
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=2, hot_tier_bytes=0
        )
        data = np.arange(64, dtype=np.int64)
        handle = backend.allocate_run(1, data)
        handle.block_elems = 8
        assert backend.stats().evicted_runs == 1
        gets_before = backend.stats().gets
        # The tiering policy says level 1 is hot: the pressure-evicted
        # run is re-admitted, costing one full-object GET.
        backend.hot_tier_bytes = None  # lift the pressure
        backend.place_run(1, level=1)
        assert (tmp_path / "o" / "hot" / "run-1.npy").exists()
        assert not (tmp_path / "o" / "objects" / "run-1.npy").exists()
        assert backend.stats().gets == gets_before + 1
        np.testing.assert_array_equal(np.asarray(handle.data), data)
        backend.close()

    def test_policy_tiered_run_stays_in_bucket(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        backend.allocate_run(1, np.arange(8, dtype=np.int64))
        backend.place_run(1, level=1)  # policy migration, not eviction
        backend.place_run(1, level=0)  # hot placement must NOT promote
        assert (tmp_path / "o" / "objects" / "run-1.npy").exists()
        assert backend.stats().object_runs == 1
        backend.close()


class TestEvictionUnderPinnedQueries:
    PHIS = (0.05, 0.25, 0.5, 0.75, 0.95)

    def test_pinned_snapshot_survives_hot_tier_pressure(self, tmp_path):
        """Stress: pinned accurate queries racing hot-tier eviction.

        A pinned snapshot's answers must be bit-identical before and
        during ingest-driven eviction pressure, because its runs are
        pinned in the backend for the handle's lifetime.
        """
        config = EngineConfig(
            epsilon=0.02,
            kappa=3,
            block_elems=32,
            shared_cache_blocks=512,
            storage_backend="object",
            storage_dir=str(tmp_path / "bucket"),
            object_tier_level=2,
            hot_tier_bytes=4096,  # a handful of runs
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(99)
        try:
            for _ in range(6):
                engine.stream_update_many(rng.integers(0, 100_000, size=500))
                engine.end_time_step()
            handle = engine.pin()
            baseline = [
                handle.quantile(phi, mode="accurate").value
                for phi in self.PHIS
            ]
            errors = []

            def query_side():
                try:
                    for _ in range(5):
                        got = [
                            handle.quantile(phi, mode="accurate").value
                            for phi in self.PHIS
                        ]
                        assert got == baseline
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            workers = [
                threading.Thread(target=query_side) for _ in range(4)
            ]
            for t in workers:
                t.start()
            # Ingest pressure: new runs push the bounded hot tier into
            # eviction while the pinned queries are in flight.
            for _ in range(6):
                engine.stream_update_many(rng.integers(0, 100_000, size=500))
                engine.end_time_step()
            for t in workers:
                t.join()
            assert errors == []
            assert engine.disk.backend.stats().evicted_runs > 0
            # The pinned partitions are still hot or were never the
            # eviction victims; their answers did not move either way.
            final = [
                handle.quantile(phi, mode="accurate").value
                for phi in self.PHIS
            ]
            assert final == baseline
            handle.release()
        finally:
            engine.close()
