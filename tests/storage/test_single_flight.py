"""Single-flight fetch coalescing stress tests.

The contract under test (ISSUE 10, cold-read fast path): N threads
racing cold probes on the same run observe exactly one backend fetch
per distinct block range — the first racer claims and charges it,
everyone else joins the in-flight fetch — and a fetch failure (an
injected :class:`~repro.faults.errors.DiskFault`) is delivered to
every waiter without poisoning the cache.  Aggregate charge totals
stay identical to the shard-lock serialization of
``single_flight=False``: each block is charged exactly once either
way, so answers and ``DiskStats`` are bit-identical across modes.
"""

import threading
import time

import numpy as np
import pytest

from repro.faults.errors import DiskFault
from repro.storage import (
    BlockCache,
    ObjectStoreBackend,
    SharedBlockCache,
    SimulatedDisk,
    SortedRun,
)

N_THREADS = 16


def _run_racers(n, target):
    """Start n threads on target(i), join them, return their errors."""
    errors = [None] * n
    barrier = threading.Barrier(n)

    def wrapped(i):
        barrier.wait()
        try:
            target(i)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            errors[i] = exc

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestSingleFlightDedup:
    def test_racers_on_one_range_charge_once(self):
        cache = SharedBlockCache(64)
        lock = threading.Lock()
        calls = {"ops": 0, "blocks": 0}

        def slow_charge(blocks):
            with lock:
                calls["ops"] += 1
                calls["blocks"] += blocks
            time.sleep(0.01)  # hold the flight open so racers pile up

        errors = _run_racers(
            N_THREADS,
            lambda i: cache.fetch_range(1, 0, 3, slow_charge),
        )
        assert errors == [None] * N_THREADS
        # Exactly one fetch for the distinct range, no matter how many
        # threads raced on it.
        assert calls == {"ops": 1, "blocks": 4}
        stats = cache.stats()
        assert stats.misses == 4
        # Everyone else hit (either by joining the flight or by
        # arriving after it resolved).
        assert stats.hits == (N_THREADS - 1) * 4

    def test_distinct_ranges_each_charge_once(self):
        cache = SharedBlockCache(256)
        lock = threading.Lock()
        charged = []

        def charge_factory(lo, hi):
            def charge(blocks):
                with lock:
                    charged.append((lo, hi, blocks))
                time.sleep(0.005)

            return charge

        # 4 distinct ranges x 4 racers each.
        ranges = [(0, 3), (10, 13), (20, 23), (30, 33)]

        def work(i):
            lo, hi = ranges[i % len(ranges)]
            cache.fetch_range(5, lo, hi, charge_factory(lo, hi))

        errors = _run_racers(N_THREADS, work)
        assert errors == [None] * N_THREADS
        assert sorted(charged) == [
            (lo, hi, 4) for lo, hi in sorted(ranges)
        ]

    def test_waiters_counted_as_coalesced(self):
        cache = SharedBlockCache(64)
        started = threading.Event()
        release = threading.Event()

        def blocking_charge(blocks):
            started.set()
            release.wait(5.0)

        owner = threading.Thread(
            target=cache.fetch_range, args=(1, 0, 0, blocking_charge)
        )
        owner.start()
        assert started.wait(5.0)
        # A racer arriving while the flight is open must join it.
        waiter_done = threading.Event()

        def wait_side():
            hits, misses = cache.fetch_range(1, 0, 0, blocking_charge)
            assert (hits, misses) == (1, 0)
            waiter_done.set()

        waiter = threading.Thread(target=wait_side)
        waiter.start()
        time.sleep(0.02)
        assert not waiter_done.is_set()  # genuinely waiting, not re-fetching
        release.set()
        owner.join()
        waiter.join()
        assert waiter_done.is_set()
        stats = cache.stats()
        assert stats.coalesced_waits == 1
        assert stats.misses == 1

    def test_aggregate_charges_match_serialized_mode(self):
        """Same racing workload, both modes: identical charge totals."""
        totals = {}
        for single_flight in (True, False):
            cache = SharedBlockCache(256, single_flight=single_flight)
            lock = threading.Lock()
            calls = {"blocks": 0}

            def charge(blocks):
                with lock:
                    calls["blocks"] += blocks
                time.sleep(0.001)

            def work(i):
                for block in range(8):
                    cache.fetch_block(7, block, charge)

            errors = _run_racers(N_THREADS, work)
            assert errors == [None] * N_THREADS
            totals[single_flight] = calls["blocks"]
        assert totals[True] == totals[False] == 8


class TestSingleFlightFailure:
    def test_failure_delivered_to_every_waiter(self):
        cache = SharedBlockCache(64)
        started = threading.Event()
        release = threading.Event()
        fault = DiskFault("read", 0)

        def failing_charge(blocks):
            started.set()
            release.wait(5.0)
            raise fault

        owner_error = []

        def owner_side():
            try:
                cache.fetch_range(1, 0, 3, failing_charge)
            except DiskFault as exc:
                owner_error.append(exc)

        owner = threading.Thread(target=owner_side)
        owner.start()
        assert started.wait(5.0)

        waiter_errors = []
        waiter_lock = threading.Lock()

        def waiter_side():
            try:
                cache.fetch_range(1, 0, 3, failing_charge)
            except DiskFault as exc:
                with waiter_lock:
                    waiter_errors.append(exc)

        waiters = [
            threading.Thread(target=waiter_side) for _ in range(6)
        ]
        for t in waiters:
            t.start()
        time.sleep(0.02)  # let the waiters join the open flight
        release.set()
        owner.join()
        for t in waiters:
            t.join()
        assert owner_error and owner_error[0] is fault
        # Every waiter that joined the failed flight saw the fault;
        # any that arrived after resolution retried (and failed on its
        # own charge) — either way, everyone got the DiskFault.
        assert len(waiter_errors) == 6
        assert all(isinstance(exc, DiskFault) for exc in waiter_errors)
        # The cache is not poisoned: nothing resident, and a healthy
        # retry charges and succeeds.
        for block in range(4):
            assert not cache.contains(1, block)
        ok = {"blocks": 0}
        cache.fetch_range(1, 0, 3, lambda n: ok.__setitem__("blocks", n))
        assert ok["blocks"] == 4
        assert cache.contains(1, 0)


class TestSingleFlightEndToEnd:
    def test_racing_cold_probes_issue_one_get(self, tmp_path):
        """32 per-query caches racing one cold block: one object GET."""
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=1, readahead_blocks=0
        )
        disk = SimulatedDisk(block_elems=4, backend=backend)
        run = SortedRun(disk, np.arange(400, dtype=np.int64))
        backend.place_run(run.run_id, level=1)
        shared = SharedBlockCache(256)

        values = [None] * 32

        def probe(i):
            cache = BlockCache(disk, shared=shared)
            values[i] = run.element_at(57, cache=cache)

        errors = _run_racers(32, probe)
        assert errors == [None] * 32
        assert values == [57] * 32
        stats = backend.stats()
        assert stats.gets == 1
        assert stats.get_blocks == 1
        backend.close()
