"""Unit and property tests for sorted on-disk runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BlockCache, SimulatedDisk, SortedRun


def make_run(data, block_elems=4):
    disk = SimulatedDisk(block_elems=block_elems)
    run = SortedRun(disk, np.asarray(data, dtype=np.int64))
    return disk, run


class TestConstruction:
    def test_rejects_unsorted(self):
        disk = SimulatedDisk(block_elems=4)
        with pytest.raises(ValueError):
            SortedRun(disk, np.asarray([3, 1, 2]))

    def test_charges_write_blocks(self):
        disk, run = make_run(range(10), block_elems=4)
        assert disk.stats.counters.sequential_writes == 3

    def test_charge_write_false(self):
        disk = SimulatedDisk(block_elems=4)
        SortedRun(disk, np.arange(10), charge_write=False)
        assert disk.stats.counters.total == 0

    def test_data_is_copied(self):
        disk = SimulatedDisk(block_elems=4)
        source = np.arange(5)
        run = SortedRun(disk, source)
        source[0] = 100
        assert run.values[0] == 0

    def test_values_view_readonly(self):
        disk, run = make_run(range(5))
        with pytest.raises(ValueError):
            run.values[0] = 1

    def test_min_max(self):
        disk, run = make_run([2, 5, 9])
        assert run.min_value() == 2
        assert run.max_value() == 9

    def test_empty_run_min_raises(self):
        disk, run = make_run([])
        with pytest.raises(ValueError):
            run.min_value()


class TestRandomAccess:
    def test_element_at_charges_one_block(self):
        disk, run = make_run(range(20), block_elems=4)
        before = disk.stats.counters.random_reads
        assert run.element_at(7) == 7
        assert disk.stats.counters.random_reads == before + 1

    def test_element_at_with_cache_dedupes(self):
        disk, run = make_run(range(20), block_elems=4)
        cache = BlockCache(disk)
        run.element_at(5, cache=cache)
        run.element_at(6, cache=cache)  # same block of 4
        assert cache.blocks_charged == 1

    def test_element_at_out_of_range(self):
        disk, run = make_run(range(5))
        with pytest.raises(IndexError):
            run.element_at(5)

    def test_read_range_returns_elements(self):
        disk, run = make_run(range(20), block_elems=4)
        np.testing.assert_array_equal(run.read_range(3, 7), [3, 4, 5, 6])

    def test_read_range_charges_touched_blocks(self):
        disk, run = make_run(range(20), block_elems=4)
        before = disk.stats.counters.random_reads
        run.read_range(3, 9)  # blocks 0, 1, 2
        assert disk.stats.counters.random_reads == before + 3

    def test_read_range_empty(self):
        disk, run = make_run(range(20))
        assert len(run.read_range(7, 7)) == 0


class TestRankOf:
    def test_rank_counts_le(self):
        disk, run = make_run([1, 3, 3, 7])
        assert run.rank_of(0) == 0
        assert run.rank_of(1) == 1
        assert run.rank_of(3) == 3
        assert run.rank_of(7) == 4
        assert run.rank_of(100) == 4

    def test_rank_matches_in_memory_rank(self):
        disk, run = make_run([1, 3, 3, 7, 9, 9, 12])
        for value in (-1, 1, 2, 3, 8, 9, 12, 13):
            assert run.rank_of(value) == run.in_memory_rank(value)

    def test_rank_with_bounds(self):
        disk, run = make_run(range(0, 100, 2), block_elems=4)
        # value 50 at index 25; bound the search around it
        assert run.rank_of(50, lo=20, hi=30) == 26

    def test_rank_charges_log_blocks(self):
        disk, run = make_run(range(1024), block_elems=4)
        cache = BlockCache(disk)
        run.rank_of(517, cache=cache)
        # binary search over 256 blocks: ~log2(1024) probes max
        assert cache.blocks_charged <= 11

    def test_scan_charges_sequential(self):
        disk, run = make_run(range(20), block_elems=4)
        before = disk.stats.counters.sequential_reads
        np.testing.assert_array_equal(run.scan(), np.arange(20))
        assert disk.stats.counters.sequential_reads == before + 5


class TestRankProperty:
    @given(
        data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=200),
        probe=st.integers(-1100, 1100),
    )
    @settings(max_examples=100, deadline=None)
    def test_rank_of_equals_searchsorted(self, data, probe):
        arr = np.sort(np.asarray(data, dtype=np.int64))
        disk = SimulatedDisk(block_elems=3)
        run = SortedRun(disk, arr)
        expected = int(np.searchsorted(arr, probe, side="right"))
        assert run.rank_of(probe) == expected
