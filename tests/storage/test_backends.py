"""Tests for the pluggable storage backends.

The load-bearing property is the equivalence moat: the three backends
must answer bit-identically and charge the exact same block I/O — a
backend changes where the bytes live and what *requests* cost, never
what is charged.
"""

import numpy as np
import pytest

from repro import ClusterEngine, EngineConfig, HybridQuantileEngine
from repro.cluster.engine import shard_config, shard_storage_dir
from repro.storage import (
    BACKEND_NAMES,
    BackendStats,
    BlockCache,
    BlockDevice,
    MmapFileBackend,
    ObjectStoreBackend,
    ObjectStoreLatency,
    SimulatedBackend,
    SimulatedDisk,
    SortedRun,
    make_backend,
)
from repro.storage.backends import FILE_TIER, MEMORY_TIER, OBJECT_TIER


def _backends(tmp_path):
    return {
        "simulated": SimulatedBackend(),
        "mmap": MmapFileBackend(tmp_path / "mmap"),
        "object": ObjectStoreBackend(tmp_path / "object"),
    }


class TestFactory:
    def test_make_backend_dispatch(self, tmp_path):
        assert isinstance(make_backend("simulated"), SimulatedBackend)
        mmap = make_backend("mmap", tmp_path / "m")
        assert isinstance(mmap, MmapFileBackend)
        obj = make_backend("object", tmp_path / "o", object_tier_level=2)
        assert isinstance(obj, ObjectStoreBackend)
        assert obj.object_tier_level == 2
        mmap.close()
        obj.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            make_backend("tape")

    def test_all_names_covered(self):
        assert set(BACKEND_NAMES) == {"simulated", "mmap", "object"}

    def test_backends_satisfy_protocol(self, tmp_path):
        for backend in _backends(tmp_path).values():
            assert isinstance(backend, BlockDevice)
            backend.close()

    def test_latency_model_validation(self):
        with pytest.raises(ValueError):
            ObjectStoreLatency(seconds_per_get=-1.0)


class TestRoundTrip:
    def test_data_round_trips_per_backend(self, tmp_path):
        data = np.arange(100, dtype=np.int64)
        for name, backend in _backends(tmp_path).items():
            handle = backend.allocate_run(7, data)
            np.testing.assert_array_equal(np.asarray(handle.data), data)
            backend.close()

    def test_allocation_copies_input(self, tmp_path):
        backend = SimulatedBackend()
        source = np.arange(5, dtype=np.int64)
        handle = backend.allocate_run(1, source)
        source[0] = 99
        assert handle.data[0] == 0

    def test_tier_labels(self, tmp_path):
        data = np.arange(10, dtype=np.int64)
        sim = SimulatedBackend()
        assert sim.allocate_run(1, data).tier == MEMORY_TIER
        mmap = MmapFileBackend(tmp_path / "m")
        assert mmap.allocate_run(1, data).tier == FILE_TIER
        obj = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        handle = obj.allocate_run(1, data)
        assert handle.tier == FILE_TIER
        obj.place_run(1, level=1)
        assert handle.tier == OBJECT_TIER
        mmap.close()
        obj.close()

    def test_deleted_run_stays_readable_via_handle(self, tmp_path):
        data = np.arange(50, dtype=np.int64)
        for name, backend in _backends(tmp_path).items():
            handle = backend.allocate_run(3, data)
            backend.delete_run(3)
            np.testing.assert_array_equal(np.asarray(handle.data), data)
            backend.close()

    def test_mmap_delete_removes_file(self, tmp_path):
        backend = MmapFileBackend(tmp_path / "m")
        backend.allocate_run(4, np.arange(8, dtype=np.int64))
        assert (tmp_path / "m" / "run-4.npy").exists()
        backend.delete_run(4)
        assert not (tmp_path / "m" / "run-4.npy").exists()
        backend.close()

    def test_owned_tempdir_removed_on_close(self):
        backend = MmapFileBackend()
        directory = backend.directory
        backend.allocate_run(1, np.arange(4, dtype=np.int64))
        assert directory.exists()
        backend.close()
        assert not directory.exists()


class TestTiering:
    def test_place_below_threshold_stays_hot(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=2)
        backend.allocate_run(1, np.arange(10, dtype=np.int64))
        backend.place_run(1, level=1)
        stats = backend.stats()
        assert stats.object_runs == 0
        assert stats.migrations == 0
        backend.close()

    def test_place_at_threshold_migrates_once(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        backend.allocate_run(1, np.arange(10, dtype=np.int64))
        backend.place_run(1, level=1)
        backend.place_run(1, level=2)  # already cold: no second PUT
        stats = backend.stats()
        assert stats.object_runs == 1
        assert stats.migrations == 1
        assert stats.puts == 1
        assert not (tmp_path / "o" / "hot" / "run-1.npy").exists()
        assert (tmp_path / "o" / "objects" / "run-1.npy").exists()
        backend.close()

    def test_migrated_run_still_reads_correctly(self, tmp_path):
        data = np.arange(64, dtype=np.int64)
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        handle = backend.allocate_run(1, data)
        backend.place_run(1, level=3)
        np.testing.assert_array_equal(np.asarray(handle.data), data)
        backend.close()

    def test_restart_lists_bucket(self, tmp_path):
        backend = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        backend.allocate_run(9, np.arange(10, dtype=np.int64))
        backend.place_run(9, level=1)
        backend.close()
        reopened = ObjectStoreBackend(tmp_path / "o", object_tier_level=1)
        stats = reopened.stats()
        assert stats.object_runs == 1
        assert stats.lists == 1
        assert reopened._path_of(9).parent.name == "objects"
        reopened.close()


class TestRequestAccounting:
    def _charged_run(self, tmp_path, block_elems=4, **backend_kwargs):
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=1, **backend_kwargs
        )
        disk = SimulatedDisk(block_elems=block_elems, backend=backend)
        run = SortedRun(disk, np.arange(40, dtype=np.int64))
        return backend, disk, run

    def test_hot_reads_are_not_gets(self, tmp_path):
        backend, disk, run = self._charged_run(tmp_path)
        run.element_at(5)
        assert backend.stats().gets == 0
        backend.close()

    def test_cold_charged_read_is_one_get(self, tmp_path):
        # coalesce=False reproduces the strict pre-coalescing
        # accounting: one GET streaming exactly the charged block.
        backend, disk, run = self._charged_run(tmp_path, coalesce=False)
        backend.place_run(run.run_id, level=1)
        run.element_at(5)
        stats = backend.stats()
        assert stats.gets == 1
        assert stats.get_blocks == 1
        backend.close()

    def test_coalesced_cold_probe_streams_readahead(self, tmp_path):
        # Default mode: the first cold probe issues one GET widened by
        # readahead (clamped to the run's last block, 9 here); probes
        # landing inside the fetched span issue no further requests.
        backend, disk, run = self._charged_run(tmp_path)
        backend.place_run(run.run_id, level=1)
        run.element_at(5)  # block 1 of 0..9
        stats = backend.stats()
        assert stats.gets == 1
        assert stats.get_blocks == 9  # blocks 1..9
        run.element_at(39)  # block 9: already streamed
        assert backend.stats().gets == 1
        run.element_at(0)  # block 0 was never fetched
        assert backend.stats().gets == 2
        backend.close()

    def test_readahead_zero_coalesces_without_widening(self, tmp_path):
        backend, disk, run = self._charged_run(tmp_path, readahead_blocks=0)
        backend.place_run(run.run_id, level=1)
        run.element_at(13)  # block 3
        run.element_at(21)  # block 5
        assert backend.stats().get_blocks == 2
        # blocks 3 and 5 already fetched: range 2..6 needs 2, 4, 6 —
        # three disjoint single-block spans.
        run.read_block_range(2, 6)
        stats = backend.stats()
        assert stats.gets == 5
        assert stats.get_blocks == 5
        backend.close()

    def test_cache_hit_never_becomes_a_get(self, tmp_path):
        backend, disk, run = self._charged_run(tmp_path)
        backend.place_run(run.run_id, level=1)
        cache = BlockCache(disk)
        run.element_at(5, cache=cache)
        before = backend.stats().gets
        run.element_at(5, cache=cache)  # same block: cache hit, no charge
        assert backend.stats().gets == before

    def test_ranged_read_is_one_get_many_blocks(self, tmp_path):
        backend, disk, run = self._charged_run(tmp_path, coalesce=False)
        backend.place_run(run.run_id, level=1)
        run.read_block_range(0, 4)
        stats = backend.stats()
        assert stats.gets == 1
        assert stats.get_blocks == 5
        backend.close()

    def test_ranged_reads_return_partial_bytes(self, tmp_path):
        # A cold ranged read must return exactly the requested slice
        # (served as a byte-range read of the bucket object), and it
        # must match what the hot tier serves for the same range.
        backend, disk, run = self._charged_run(tmp_path)
        hot = run.read_block_range(2, 4)
        backend.place_run(run.run_id, level=1)
        cold = run.read_block_range(2, 4)
        np.testing.assert_array_equal(cold, hot)
        np.testing.assert_array_equal(cold, np.arange(8, 20, dtype=np.int64))
        backend.close()

    def test_sequential_scan_is_one_get(self, tmp_path):
        backend, disk, run = self._charged_run(tmp_path)
        backend.place_run(run.run_id, level=1)
        run.scan()
        stats = backend.stats()
        assert stats.gets == 1
        assert stats.get_blocks == 10
        backend.close()

    def test_latency_accrues_per_request(self, tmp_path):
        latency = ObjectStoreLatency(
            seconds_per_get=1.0,
            seconds_per_get_block=0.0,
            seconds_per_put=10.0,
            seconds_per_list=100.0,
        )
        backend = ObjectStoreBackend(
            tmp_path / "o", object_tier_level=1, latency=latency
        )
        disk = SimulatedDisk(block_elems=4, backend=backend)
        run = SortedRun(disk, np.arange(16, dtype=np.int64))
        backend.place_run(run.run_id, level=1)
        run.element_at(0)
        # 1 LIST (startup) + 1 PUT (migration) + 1 GET
        assert backend.simulated_seconds() == pytest.approx(111.0)
        assert disk.simulated_seconds() >= backend.simulated_seconds()
        backend.close()

    def test_delta_since(self):
        a = BackendStats(gets=2, get_blocks=5, puts=1, hot_runs=4)
        b = BackendStats(gets=7, get_blocks=9, puts=3, hot_runs=2)
        delta = b.delta_since(a)
        assert delta.gets == 5
        assert delta.get_blocks == 4
        assert delta.puts == 2
        assert delta.hot_runs == 2  # residency is a level, not a counter

    def test_delta_since_counters_vs_gauges(self):
        # Counters (monotonic totals) are subtracted; gauges (current
        # levels) are copied verbatim from the newer snapshot.  An
        # ablation writer that subtracted a gauge would report garbage.
        before = BackendStats(
            gets=10,
            get_blocks=100,
            puts=4,
            lists=1,
            migrations=3,
            evicted_runs=2,
            hot_runs=6,
            object_runs=3,
            hot_bytes=4096,
        )
        after = BackendStats(
            gets=15,
            get_blocks=180,
            puts=6,
            lists=1,
            migrations=5,
            evicted_runs=4,
            hot_runs=2,
            object_runs=7,
            hot_bytes=1024,
        )
        delta = after.delta_since(before)
        # counters: deltas
        assert delta.gets == 5
        assert delta.get_blocks == 80
        assert delta.puts == 2
        assert delta.lists == 0
        assert delta.migrations == 2
        assert delta.evicted_runs == 2
        # gauges: copied, never subtracted
        assert delta.hot_runs == 2
        assert delta.object_runs == 7
        assert delta.hot_bytes == 1024


class TestEngineEquivalence:
    PHIS = (0.05, 0.5, 0.95, 0.99)

    def _drive(self, config):
        rng = np.random.default_rng(1234)
        engine = HybridQuantileEngine(config=config)
        try:
            for _ in range(6):
                engine.stream_update_many(
                    rng.integers(0, 1_000_000, size=400)
                )
                engine.end_time_step()
            engine.stream_update_many(rng.integers(0, 1_000_000, size=200))
            quick = [
                engine.quantile(phi, mode="quick").value
                for phi in self.PHIS
            ]
            accurate = [
                engine.quantile(phi, mode="accurate").value
                for phi in self.PHIS
            ]
            engine.check_invariants()
            counters = engine.disk.stats.counters
            io = (
                counters.random_reads,
                counters.sequential_reads,
                counters.sequential_writes,
            )
            return quick, accurate, io
        finally:
            engine.close()

    def test_bit_identical_answers_across_backends(self, tmp_path):
        results = {}
        for name in BACKEND_NAMES:
            config = EngineConfig(
                epsilon=0.05,
                block_elems=64,
                storage_backend=name,
                storage_dir=str(tmp_path / name) if name != "simulated" else None,
            )
            results[name] = self._drive(config)
        baseline = results["simulated"]
        for name in ("mmap", "object"):
            assert results[name] == baseline, name

    def test_engine_owns_and_closes_backend(self, tmp_path):
        config = EngineConfig(
            epsilon=0.05,
            block_elems=64,
            storage_backend="mmap",
            storage_dir=str(tmp_path / "runs"),
        )
        engine = HybridQuantileEngine(config=config)
        assert isinstance(engine.disk.backend, MmapFileBackend)
        assert engine._owns_backend
        engine.stream_update_many(np.arange(100, dtype=np.int64))
        engine.end_time_step()
        assert any((tmp_path / "runs").glob("run-*.npy"))
        engine.close()

    def test_simulated_default_installs_no_backend(self):
        engine = HybridQuantileEngine(config=EngineConfig(epsilon=0.05))
        assert isinstance(engine.disk.backend, SimulatedBackend)
        assert not engine._owns_backend
        engine.close()

    def test_cluster_gives_each_shard_its_own_dir(self, tmp_path):
        config = EngineConfig(
            epsilon=0.05,
            block_elems=64,
            storage_backend="mmap",
            storage_dir=str(tmp_path / "cluster"),
        )
        assert shard_config(config, 2).storage_dir == str(
            shard_storage_dir(tmp_path / "cluster", 2)
        )
        # Simulated or directory-less configs pass through unchanged.
        assert shard_config(EngineConfig(epsilon=0.05), 1) is not None
        assert (
            shard_config(EngineConfig(epsilon=0.05), 1).storage_dir is None
        )
        cluster = ClusterEngine(shards=2, config=config)
        try:
            cluster.stream_update_many(
                np.arange(2_000, dtype=np.int64)
            )
            cluster.end_time_step()
            dirs = sorted(
                p.name for p in (tmp_path / "cluster").iterdir()
            )
            assert dirs == ["shard-00", "shard-01"]
            for name in dirs:
                assert any(
                    (tmp_path / "cluster" / name).glob("run-*.npy")
                )
        finally:
            cluster.close()

    def test_checkpoint_round_trips_backend_config(self, tmp_path):
        from repro.persistence.checkpoint import load_engine, save_engine

        config = EngineConfig(
            epsilon=0.05,
            block_elems=64,
            storage_backend="mmap",
            storage_dir=str(tmp_path / "runs"),
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(11)
        engine.stream_update_many(rng.integers(0, 10_000, size=500))
        engine.end_time_step()
        expected = engine.quantile(0.5, mode="accurate").value
        save_engine(engine, tmp_path / "ckpt")
        engine.close()

        restored = load_engine(tmp_path / "ckpt")
        try:
            assert restored.config.storage_backend == "mmap"
            assert restored.config.storage_dir == str(tmp_path / "runs")
            assert isinstance(restored.disk.backend, MmapFileBackend)
            assert restored.quantile(0.5, mode="accurate").value == expected
        finally:
            restored.close()

    def test_object_engine_reports_epoch_stats(self, tmp_path):
        config = EngineConfig(
            epsilon=0.05,
            kappa=3,  # small fan-in so level-0 runs merge (and migrate)
            block_elems=64,
            storage_backend="object",
            storage_dir=str(tmp_path / "bucket"),
            object_tier_level=1,
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(7)
        for _ in range(8):
            engine.stream_update_many(rng.integers(0, 10_000, size=400))
            engine.end_time_step()
        engine.quantile(0.5, mode="accurate")
        stats = engine.epoch_stats
        backend_stats = engine.disk.backend.stats()
        assert stats.object_puts == backend_stats.puts
        assert stats.object_gets == backend_stats.gets
        assert backend_stats.migrations > 0
        engine.close()
