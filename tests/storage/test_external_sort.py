"""Tests for the external sorter and multi-way merge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import ExternalSorter, SimulatedDisk, SortedRun, merge_runs


class TestExternalSorter:
    def test_sorts_correctly(self):
        disk = SimulatedDisk(block_elems=4)
        sorter = ExternalSorter(disk)
        run = sorter.sort(np.asarray([5, 1, 9, 3]))
        np.testing.assert_array_equal(run.values, [1, 3, 5, 9])

    def test_in_memory_sort_charges_output_write_only(self):
        disk = SimulatedDisk(block_elems=4)
        sorter = ExternalSorter(disk, memory_elems=100)
        sorter.sort(np.arange(40)[::-1])
        assert disk.stats.counters.sequential_writes == 10
        assert disk.stats.counters.sequential_reads == 0

    def test_passes_needed_zero_when_fits(self):
        disk = SimulatedDisk()
        sorter = ExternalSorter(disk, memory_elems=1000)
        assert sorter.passes_needed(1000) == 0

    def test_passes_needed_counts_merge_levels(self):
        disk = SimulatedDisk()
        sorter = ExternalSorter(disk, memory_elems=10, fan_in=4)
        # 100 elems -> 10 runs -> ceil(log4 10)=2 merge levels + formation
        assert sorter.passes_needed(100) == 3

    def test_oversized_batch_charges_passes(self):
        disk = SimulatedDisk(block_elems=10)
        sorter = ExternalSorter(disk, memory_elems=50, fan_in=64)
        sorter.sort(np.arange(100)[::-1])
        # 2 passes (formation + 1 merge level) read+write 10 blocks each,
        # plus the final output write of 10 blocks.
        assert disk.stats.counters.sequential_reads == 20
        assert disk.stats.counters.sequential_writes == 30

    def test_rejects_bad_params(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            ExternalSorter(disk, memory_elems=0)
        with pytest.raises(ValueError):
            ExternalSorter(disk, fan_in=1)


class TestMergeRuns:
    def test_merges_sorted(self):
        disk = SimulatedDisk(block_elems=4)
        a = SortedRun(disk, np.asarray([1, 4, 7]))
        b = SortedRun(disk, np.asarray([2, 4, 9]))
        merged = merge_runs(disk, [a, b])
        np.testing.assert_array_equal(merged.values, [1, 2, 4, 4, 7, 9])

    def test_merge_charges_one_pass(self):
        disk = SimulatedDisk(block_elems=4)
        a = SortedRun(disk, np.arange(16))
        b = SortedRun(disk, np.arange(16))
        before = disk.stats.counters.snapshot()
        merge_runs(disk, [a, b])
        delta = disk.stats.counters.delta_since(before)
        assert delta.sequential_reads == 8   # read both inputs
        assert delta.sequential_writes == 8  # write the merged output

    def test_merge_empty_list_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            merge_runs(disk, [])

    def test_merge_with_empty_run(self):
        disk = SimulatedDisk(block_elems=4)
        a = SortedRun(disk, np.asarray([3, 5]))
        b = SortedRun(disk, np.empty(0, dtype=np.int64))
        merged = merge_runs(disk, [a, b])
        np.testing.assert_array_equal(merged.values, [3, 5])

    @given(
        chunks=st.lists(
            st.lists(st.integers(-100, 100), max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_global_sort(self, chunks):
        disk = SimulatedDisk(block_elems=3)
        runs = [
            SortedRun(disk, np.sort(np.asarray(c, dtype=np.int64)))
            for c in chunks
        ]
        merged = merge_runs(disk, runs)
        expected = np.sort(
            np.concatenate(
                [np.asarray(c, dtype=np.int64) for c in chunks]
            )
        )
        np.testing.assert_array_equal(merged.values, expected)


class TestKWayMerge:
    """The true k-way merge must match concatenate-and-sort exactly."""

    def test_interleaving_with_duplicates(self):
        from repro.storage.external_sort import kway_merge

        merged = kway_merge(
            [
                np.asarray([1, 3, 3, 7], dtype=np.int64),
                np.asarray([2, 3, 8], dtype=np.int64),
                np.asarray([3], dtype=np.int64),
            ]
        )
        np.testing.assert_array_equal(merged, [1, 2, 3, 3, 3, 3, 7, 8])

    def test_empty_and_single_inputs(self):
        from repro.storage.external_sort import kway_merge

        assert kway_merge([]).size == 0
        assert kway_merge([np.empty(0, dtype=np.int64)]).size == 0
        np.testing.assert_array_equal(
            kway_merge([np.asarray([4, 9], dtype=np.int64)]), [4, 9]
        )

    @given(
        chunks=st.lists(
            st.lists(st.integers(-(2**40), 2**40), max_size=60),
            min_size=1,
            max_size=9,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_kway_equals_global_sort(self, chunks):
        from repro.storage.external_sort import kway_merge

        arrays = [np.sort(np.asarray(c, dtype=np.int64)) for c in chunks]
        merged = kway_merge(arrays)
        expected = np.sort(np.concatenate(arrays)) if arrays else merged
        np.testing.assert_array_equal(merged, expected)

    @given(
        chunks=st.lists(
            st.lists(st.integers(-100, 100), max_size=30),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_runs_io_charges_unchanged(self, chunks):
        """merge_runs must charge exactly what the spec always charged:
        read every input run once, write the merged output once."""
        disk = SimulatedDisk(block_elems=3)
        runs = [
            SortedRun(disk, np.sort(np.asarray(c, dtype=np.int64)))
            for c in chunks
        ]
        before = disk.stats.counters.snapshot()
        merged = merge_runs(disk, runs)
        delta = disk.stats.counters.delta_since(before)
        expected_reads = sum(
            disk.blocks_for(len(run.values)) for run in runs
        )
        assert delta.sequential_reads == expected_reads
        assert delta.sequential_writes == disk.blocks_for(len(merged.values))
        assert delta.random_reads == 0
