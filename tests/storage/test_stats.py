"""Unit tests for I/O counters and the latency model."""

import pytest

from repro.storage.stats import DiskLatencyModel, DiskStats, IoCounters


class TestIoCounters:
    def test_starts_at_zero(self):
        counters = IoCounters()
        assert counters.total == 0
        assert counters.sequential == 0
        assert counters.random_reads == 0

    def test_total_sums_all_kinds(self):
        counters = IoCounters(
            sequential_reads=3, sequential_writes=4, random_reads=5
        )
        assert counters.total == 12
        assert counters.sequential == 7

    def test_add_accumulates(self):
        a = IoCounters(sequential_reads=1, sequential_writes=2, random_reads=3)
        b = IoCounters(sequential_reads=10, sequential_writes=20, random_reads=30)
        a.add(b)
        assert a.sequential_reads == 11
        assert a.sequential_writes == 22
        assert a.random_reads == 33

    def test_snapshot_is_independent(self):
        a = IoCounters(sequential_reads=1)
        snap = a.snapshot()
        a.sequential_reads = 99
        assert snap.sequential_reads == 1

    def test_delta_since(self):
        a = IoCounters(sequential_reads=5, random_reads=2)
        snap = a.snapshot()
        a.sequential_reads += 3
        a.random_reads += 1
        delta = a.delta_since(snap)
        assert delta.sequential_reads == 3
        assert delta.random_reads == 1
        assert delta.sequential_writes == 0

    def test_reset(self):
        a = IoCounters(sequential_reads=5, sequential_writes=6, random_reads=7)
        a.reset()
        assert a.total == 0


class TestDiskLatencyModel:
    def test_seconds_weights_random_more(self):
        model = DiskLatencyModel(
            seconds_per_sequential_block=0.1, seconds_per_random_block=1.0
        )
        counters = IoCounters(
            sequential_reads=2, sequential_writes=3, random_reads=4
        )
        assert model.seconds(counters) == pytest.approx(0.5 + 4.0)

    def test_default_matches_paper_assumption(self):
        # Section 2.4 assumes 1 block per millisecond for random access.
        model = DiskLatencyModel()
        assert model.seconds_per_random_block == pytest.approx(1e-3)


class TestDiskStats:
    def test_phase_buckets(self):
        stats = DiskStats()
        stats.set_phase("load")
        stats.record_sequential_write(5)
        stats.set_phase("merge")
        stats.record_sequential_read(3)
        stats.record_sequential_write(3)
        stats.set_phase("query")
        stats.record_random_read(2)
        assert stats.load.sequential_writes == 5
        assert stats.merge.sequential == 6
        assert stats.query.random_reads == 2
        assert stats.counters.total == 13

    def test_unknown_phase_rejected(self):
        stats = DiskStats()
        with pytest.raises(ValueError):
            stats.set_phase("banana")

    def test_totals_track_all_phases(self):
        stats = DiskStats()
        stats.set_phase("sort")
        stats.record_sequential_read(7)
        stats.set_phase("load")
        stats.record_sequential_write(1)
        assert stats.counters.sequential_reads == 7
        assert stats.counters.sequential_writes == 1
        assert stats.sort.sequential_reads == 7


class TestThreadLocalPhases:
    def test_phase_is_per_thread(self):
        import threading

        stats = DiskStats()
        stats.set_phase("merge")
        seen = {}

        def worker():
            seen["initial"] = stats.current_phase
            stats.set_phase("query")
            stats.record_random_read(1)
            stats.record_sequential_read(2)
            seen["final"] = stats.current_phase

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        # the worker defaulted to "load", not this thread's "merge"
        assert seen == {"initial": "load", "final": "query"}
        assert stats.current_phase == "merge"
        # and its charges went to its own phase
        assert stats.query.random_reads == 1
        assert stats.query.sequential_reads == 2
        assert stats.merge.total == 0

    def test_phase_scope_restores(self):
        stats = DiskStats()
        stats.set_phase("query")
        with stats.phase_scope("sort"):
            stats.record_sequential_read(3)
            assert stats.current_phase == "sort"
        assert stats.current_phase == "query"
        assert stats.sort.sequential_reads == 3


class TestCapture:
    def test_capture_tallies_own_thread_only(self):
        import threading

        stats = DiskStats()
        inside = threading.Event()
        done = threading.Event()

        def noise():
            inside.wait(timeout=5)
            stats.set_phase("merge")
            stats.record_sequential_write(100)
            done.set()

        thread = threading.Thread(target=noise)
        thread.start()
        with stats.capture() as tally:
            stats.set_phase("sort")
            stats.record_sequential_read(4)
            inside.set()
            done.wait(timeout=5)
            stats.record_sequential_write(2)
        thread.join()
        # the concurrent thread's 100 writes are absent from the tally
        assert tally.total.sequential_reads == 4
        assert tally.total.sequential_writes == 2
        assert tally.phase("sort").sequential_reads == 4
        assert tally.phase("sort").sequential_writes == 2
        # ...but present in the global counters
        assert stats.counters.sequential_writes == 102

    def test_captures_nest(self):
        stats = DiskStats()
        with stats.capture() as outer:
            stats.record_sequential_read(1)
            with stats.capture() as inner:
                stats.record_sequential_read(2)
        assert inner.total.sequential_reads == 2
        assert outer.total.sequential_reads == 3

    def test_random_reads_attributed_to_query_phase(self):
        stats = DiskStats()
        stats.set_phase("merge")
        with stats.capture() as tally:
            stats.record_random_read(5)
        assert tally.phase("query").random_reads == 5
        assert tally.phase("merge").total == 0

    def test_tally_add(self):
        from repro.storage.stats import PhaseTally

        stats = DiskStats()
        with stats.capture() as first:
            stats.record_sequential_read(1)
        with stats.capture() as second:
            with stats.phase_scope("merge"):
                stats.record_sequential_write(2)
        combined = PhaseTally()
        combined.add(first)
        combined.add(second)
        assert combined.total.total == 3
        assert combined.phase("load").sequential_reads == 1
        assert combined.phase("merge").sequential_writes == 2
