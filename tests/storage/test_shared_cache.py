"""Tests for the process-wide shared block cache (cross-query tier)."""

import threading

import pytest

from repro.storage import BlockCache, SharedBlockCache, SimulatedDisk
from repro.storage.shared_cache import shard_count


def charge_counter():
    """A charge callable recording (calls, blocks)."""
    calls = {"ops": 0, "blocks": 0}

    def charge(blocks):
        calls["ops"] += 1
        calls["blocks"] += blocks

    return charge, calls


class TestTwoQEviction:
    def test_capacity_is_enforced(self):
        cache = SharedBlockCache(8)
        charge, _ = charge_counter()
        for block in range(20):
            cache.fetch_block(1, block, charge)
        assert cache.resident_blocks <= 8
        assert cache.stats().evictions == 20 - cache.resident_blocks

    def test_one_shot_scan_does_not_evict_hot_blocks(self):
        cache = SharedBlockCache(8)
        charge, _ = charge_counter()
        # Make blocks 0 and 1 hot: re-referenced => promoted out of
        # the probation FIFO into the protected LRU segment.
        for block in (0, 1):
            cache.fetch_block(1, block, charge)
            cache.fetch_block(1, block, charge)
        # Wash a long one-shot scan through probation.
        for block in range(100, 140):
            cache.fetch_block(2, block, charge)
        assert cache.contains(1, 0)
        assert cache.contains(1, 1)

    def test_probation_evicts_fifo(self):
        cache = SharedBlockCache(4)  # probation target = 1
        charge, _ = charge_counter()
        for block in range(6):
            cache.fetch_block(1, block, charge)
        # Never-re-referenced blocks leave in arrival order; the most
        # recent arrivals are still resident.
        assert cache.contains(1, 5)
        assert not cache.contains(1, 0)

    def test_capacity_below_one_rejected(self):
        with pytest.raises(ValueError):
            SharedBlockCache(0)


class TestFetchAccounting:
    def test_miss_charges_then_hit_is_free(self):
        cache = SharedBlockCache(16)
        charge, calls = charge_counter()
        assert cache.fetch_block(1, 0, charge) is False
        assert cache.fetch_block(1, 0, charge) is True
        assert calls == {"ops": 1, "blocks": 1}
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.hit_rate == 0.5

    def test_fetch_range_single_charge_op(self):
        cache = SharedBlockCache(16)
        charge, calls = charge_counter()
        hits, misses = cache.fetch_range(1, 2, 6, charge)
        assert (hits, misses) == (0, 5)
        assert calls == {"ops": 1, "blocks": 5}
        # Partially resident range: one op for just the missing blocks.
        hits, misses = cache.fetch_range(1, 4, 8, charge)
        assert (hits, misses) == (3, 2)
        assert calls == {"ops": 2, "blocks": 7}

    def test_fully_resident_range_charges_nothing(self):
        cache = SharedBlockCache(16)
        charge, calls = charge_counter()
        cache.fetch_range(1, 0, 3, charge)
        cache.fetch_range(1, 0, 3, charge)
        assert calls["ops"] == 1

    def test_failed_charge_leaves_block_non_resident(self):
        cache = SharedBlockCache(16)

        def failing(blocks):
            raise IOError("injected")

        with pytest.raises(IOError):
            cache.fetch_block(1, 0, failing)
        assert not cache.contains(1, 0)

    def test_prefetch_flag_counted(self):
        cache = SharedBlockCache(16)
        charge, _ = charge_counter()
        cache.fetch_range(1, 0, 3, charge, prefetch=True)
        assert cache.stats().prefetched_blocks == 4


class TestInvalidation:
    def test_drops_blocks_and_is_idempotent(self):
        cache = SharedBlockCache(16)
        charge, _ = charge_counter()
        for block in range(5):
            cache.fetch_block(7, block, charge)
        assert cache.invalidate_run(7) == 5
        assert cache.invalidate_run(7) == 0
        assert cache.resident_blocks == 0
        stats = cache.stats()
        assert stats.invalidated_blocks == 5
        assert stats.invalidated_runs == 1

    def test_retired_run_refuses_reinsertion(self):
        cache = SharedBlockCache(16)
        charge, calls = charge_counter()
        cache.fetch_block(7, 0, charge)
        cache.invalidate_run(7)
        assert cache.is_retired(7)
        # A pinned snapshot still probing the retired run just misses:
        # charged every time, never resident again.
        assert cache.fetch_block(7, 0, charge) is False
        assert cache.fetch_block(7, 0, charge) is False
        assert not cache.contains(7, 0)
        assert calls["blocks"] == 3

    def test_shard_map_is_pruned(self):
        # Per-run shard locks are only allocated by the serialized
        # (single_flight=False) path; either way invalidation must
        # prune the map so it cannot grow without bound.
        cache = SharedBlockCache(16, single_flight=False)
        charge, _ = charge_counter()
        for run_id in range(10):
            cache.fetch_block(run_id, 0, charge)
        assert shard_count(cache) == 10
        cache.invalidate_runs(range(10))
        assert shard_count(cache) == 0

    def test_invalidation_survives_eviction_of_same_blocks(self):
        cache = SharedBlockCache(4)
        charge, _ = charge_counter()
        for block in range(10):  # most already evicted
            cache.fetch_block(7, block, charge)
        dropped = cache.invalidate_run(7)
        assert dropped == cache.stats().invalidated_blocks
        assert cache.resident_blocks == 0


class TestFollowers:
    def test_follower_per_run_state_is_pruned(self):
        disk = SimulatedDisk(block_elems=16)
        shared = SharedBlockCache(16)
        follower = BlockCache(disk, shared=shared, follow_invalidation=True)
        follower.touch(7, 0)
        follower.touch(8, 0)
        assert follower.tracked_runs() == 2
        charged = follower.blocks_charged
        shared.invalidate_run(7)
        assert follower.tracked_runs() == 1
        # Aggregate counters describe work already paid for.
        assert follower.blocks_charged == charged
        # The retired run's seen-set is gone: a re-touch is charged.
        follower.touch(7, 0)
        assert follower.blocks_charged == charged + 1

    def test_non_follower_keeps_pinned_accounting(self):
        disk = SimulatedDisk(block_elems=16)
        shared = SharedBlockCache(16)
        pinned = BlockCache(disk, shared=shared)
        pinned.touch(7, 0)
        shared.invalidate_run(7)
        before = disk.stats.counters.random_reads
        # Per-query accounting holds through the pin: the repeat touch
        # is free even though the shared tier retired the run.
        pinned.touch(7, 0)
        assert disk.stats.counters.random_reads == before
        assert pinned.tracked_runs() == 1


class TestReadThrough:
    def test_second_query_warm_and_uncharged(self):
        disk = SimulatedDisk(block_elems=16)
        shared = SharedBlockCache(16)
        first = BlockCache(disk, shared=shared)
        for block in range(4):
            first.touch(1, block)
        assert first.blocks_charged == 4
        second = BlockCache(disk, shared=shared)
        for block in range(4):
            second.touch(1, block)
        assert second.blocks_charged == 0
        assert second.shared_hits == 4
        assert disk.stats.counters.random_reads == 4

    def test_touch_range_reads_through_in_contiguous_ops(self):
        disk = SimulatedDisk(block_elems=16)
        shared = SharedBlockCache(64)
        warm = BlockCache(disk, shared=shared)
        warm.touch(1, 3)  # splits the later range into two gaps
        ops = {"n": 0}
        original = disk.charge_random_read

        def counting(blocks=1):
            ops["n"] += 1
            original(blocks)

        disk.charge_random_read = counting
        cold = BlockCache(disk, shared=shared)
        cold.touch_range(1, 0, 6)
        # One ranged lookup: the six missing blocks are charged in a
        # single op; block 3 is a shared hit, free.
        assert ops["n"] == 1
        assert cold.blocks_charged == 6
        assert cold.shared_hits == 1

    def test_without_shared_tier_behaviour_is_historical(self):
        disk = SimulatedDisk(block_elems=16)
        cache = BlockCache(disk)
        assert cache.shared is None
        cache.touch(1, 0)
        cache.touch(1, 0)
        assert disk.stats.counters.random_reads == 1


class TestConcurrency:
    """Aggregate charge totals are deterministic under racing queries."""

    THREADS = 8
    RUNS = 4
    BLOCKS = 40

    def test_each_block_charged_once_globally(self):
        disk = SimulatedDisk(block_elems=16)
        shared = SharedBlockCache(self.RUNS * self.BLOCKS)
        barrier = threading.Barrier(self.THREADS)
        caches = [BlockCache(disk, shared=shared) for _ in range(self.THREADS)]

        def worker(index):
            barrier.wait()
            cache = caches[index]
            for i in range(self.RUNS * self.BLOCKS):
                j = (i + index * 7) % (self.RUNS * self.BLOCKS)
                cache.touch(j // self.BLOCKS, j % self.BLOCKS)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        unique = self.RUNS * self.BLOCKS
        # Which query paid for a block may vary run to run; the global
        # totals cannot.
        assert disk.stats.counters.random_reads == unique
        assert sum(c.blocks_charged for c in caches) == unique
        assert (
            sum(c.shared_hits for c in caches)
            == self.THREADS * unique - unique
        )

    def test_concurrent_invalidation_never_resurrects(self):
        disk = SimulatedDisk(block_elems=16)
        shared = SharedBlockCache(256)
        stop = threading.Event()

        def prober():
            cache = BlockCache(disk, shared=shared)
            while not stop.is_set():
                for block in range(8):
                    cache.touch(99, block)

        threads = [threading.Thread(target=prober) for _ in range(4)]
        for thread in threads:
            thread.start()
        shared.invalidate_run(99)
        stop.set()
        for thread in threads:
            thread.join()
        assert shared.is_retired(99)
        for block in range(8):
            assert not shared.contains(99, block)
