"""Cross-module integration tests: all engines, all workloads."""

import numpy as np
import pytest

from repro import (
    HybridQuantileEngine,
    MemoryBudget,
    PureStreamingEngine,
    StrawmanEngine,
)
from repro.core import EngineConfig
from repro.evaluation import ExperimentRunner
from repro.workloads import ALL_WORKLOADS


def small_runner(workload_cls, steps=5, batch=1500):
    return ExperimentRunner(
        workload=workload_cls(seed=99),
        num_steps=steps,
        batch_elems=batch,
    )


class TestAllWorkloads:
    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_four_way_comparison(self, workload_cls):
        """Hybrid ~ strawman accuracy; both beat pure streaming; the
        strawman pays the most update I/O."""
        runner = small_runner(workload_cls)
        epsilon = 0.02
        workload = workload_cls(seed=99)
        result = runner.run(
            {
                "ours": HybridQuantileEngine(
                    epsilon=epsilon, kappa=3, block_elems=16
                ),
                "strawman": StrawmanEngine(epsilon=epsilon, block_elems=16),
                "gk": PureStreamingEngine(kind="gk", epsilon=epsilon),
                "qdigest": PureStreamingEngine(
                    kind="qdigest",
                    epsilon=epsilon,
                    universe_log2=workload.universe_log2,
                ),
            },
            phis=(0.25, 0.5, 0.75),
        )
        ours = result["ours"]
        strawman = result["strawman"]
        # Stream-bounded engines keep pace with pure streaming even at
        # toy scale (a few ranks of tolerance — at this N the baselines
        # can land on exactly-0 error; the benchmarks assert strict
        # dominance at experiment scale).
        tolerance = 5 / (0.25 * runner.batch_elems * 6)
        for baseline in ("gk", "qdigest"):
            assert ours.mean_relative_error <= (
                result[baseline].mean_relative_error + tolerance
            )
        # strawman pays the most update I/O; ours amortizes merges
        assert strawman.mean_update_io > ours.mean_update_io
        # pure streaming never touches disk at query time
        assert result["gk"].mean_query_disk_accesses == 0
        assert ours.mean_query_disk_accesses > 0

    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS)
    def test_guarantee_on_every_workload(self, workload_cls):
        epsilon = 0.05
        runner = small_runner(workload_cls)
        result = runner.run(
            {
                "ours": HybridQuantileEngine(
                    epsilon=epsilon, kappa=3, block_elems=16
                )
            },
            phis=(0.1, 0.5, 0.9, 0.99),
        )
        m = runner.stream_elems
        for query in result["ours"].queries:
            assert query.rank_error <= 1.5 * epsilon * m + 2


class TestMemoryCalibration:
    def test_budgeted_engine_respects_budget(self):
        """An engine sized through MemoryBudget must actually fit in
        roughly that much memory (the model is calibrated)."""
        steps, batch = 10, 20_000
        budget = MemoryBudget(total_words=8000)
        eps1, eps2 = budget.epsilons(batch, kappa=10, num_steps=steps)
        config = EngineConfig(
            epsilon=min(0.5, 4 * eps2), eps1=eps1, eps2=eps2,
            kappa=10, block_elems=64,
        )
        engine = HybridQuantileEngine(config=config)
        rng = np.random.default_rng(17)
        for _ in range(steps):
            engine.stream_update_batch(rng.integers(0, 10**9, batch))
            engine.end_time_step()
        engine.stream_update_batch(rng.integers(0, 10**9, batch))
        measured = engine.memory_report().total_words
        assert measured <= 2.0 * budget.total_words
        assert measured >= budget.total_words / 20


class TestEdgeCases:
    def test_empty_time_step(self):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        report = engine.end_time_step()  # no stream data at all
        assert report.batch_elems == 0
        engine.stream_update_batch(np.arange(100))
        assert engine.quantile(0.5).value == 49

    def test_single_element_universe(self):
        engine = HybridQuantileEngine(epsilon=0.1, kappa=2, block_elems=4)
        for _ in range(4):
            engine.stream_update_batch(np.full(100, 7))
            engine.end_time_step()
        engine.stream_update_batch(np.full(100, 7))
        for mode in ("quick", "accurate"):
            assert engine.quantile(0.5, mode=mode).value == 7

    def test_adversarial_sawtooth_stream(self):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        saw = np.tile(np.concatenate([np.arange(50), np.arange(50)[::-1]]),
                      20)
        for _ in range(4):
            engine.stream_update_batch(saw)
            engine.end_time_step()
        engine.stream_update_batch(saw)
        result = engine.quantile(0.5)
        assert 20 <= result.value <= 30

    def test_negative_values(self):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        rng = np.random.default_rng(23)
        data = rng.integers(-(10**6), 10**6, 2000)
        engine.stream_update_batch(data)
        engine.end_time_step()
        engine.stream_update_batch(rng.integers(-(10**6), 10**6, 2000))
        result = engine.quantile(0.5)
        assert -(10**6) <= result.value <= 10**6

    def test_huge_value_range(self):
        engine = HybridQuantileEngine(epsilon=0.05, kappa=3, block_elems=16)
        data = np.asarray([0, 2**62, 1, 2**61, 2], dtype=np.int64)
        engine.stream_update_batch(np.tile(data, 400))
        engine.end_time_step()
        engine.stream_update_batch(np.tile(data, 400))
        result = engine.quantile(0.5)
        assert result.value in (0, 1, 2, 2**61, 2**62)
        # value-domain bisection stays within the 64-bit depth bound
        assert result.iterations <= 64
